//! The *simplex* subcontract: client-server with a subcontract dialogue.
//!
//! §7 of the paper walks a file object through its whole life cycle on
//! simplex: "a very simple client-server subcontract, using a single kernel
//! door identifier to communicate with the server". Unlike singleton,
//! simplex routes incoming calls through server-side subcontract code first
//! (§5.2.2's common option), so the client and server subcontract halves
//! exchange a one-byte control region on every call and reply — the hook a
//! richer dialogue would piggyback on.
//!
//! Simplex also implements the §5.2.1 same-address-space fast path: an
//! object exported with [`Simplex::export_local`] invokes its dispatcher
//! directly, paying for a kernel door only when (and if) the object is
//! first marshalled to another domain.

use std::sync::Arc;

use parking_lot::Mutex;
use spring_buf::CommBuffer;
use spring_kernel::{CallCtx, DoorHandler, DoorId, Message};
use subcontract::{
    get_obj_header, put_obj_header, redispatch_if_foreign, server_dispatch, Dispatch, DomainCtx,
    ObjParts, Repr, Result, ScId, ServerCtx, ServerSubcontract, SpringObj, Subcontract, TypeInfo,
};

/// Control-region flag: an ordinary call.
const CTRL_NORMAL: u8 = 0;

/// Client representation: a remote door, or the local fast path.
enum SimplexState {
    /// The common case: the server is reached through a door.
    Remote(DoorId),
    /// Same-address-space fast path: calls go straight to the dispatcher; a
    /// door is created lazily on first marshal.
    Local {
        disp: Arc<dyn Dispatch>,
        door: Option<DoorId>,
    },
}

#[derive(Debug)]
struct SimplexReprInner {
    state: SimplexState,
}

#[derive(Debug)]
pub(crate) struct SimplexRepr {
    inner: Mutex<SimplexReprInner>,
}

impl SimplexRepr {
    pub(crate) fn remote(door: DoorId) -> Self {
        SimplexRepr {
            inner: Mutex::new(SimplexReprInner {
                state: SimplexState::Remote(door),
            }),
        }
    }

    /// The door identifier, when the object is in the remote state.
    pub(crate) fn remote_door(&self) -> Option<DoorId> {
        match &self.inner.lock().state {
            SimplexState::Remote(d) => Some(*d),
            SimplexState::Local { door, .. } => *door,
        }
    }
}

impl std::fmt::Debug for SimplexState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimplexState::Remote(d) => write!(f, "Remote({d:?})"),
            SimplexState::Local { door, .. } => write!(f, "Local(door: {door:?})"),
        }
    }
}

/// The simplex subcontract (client and server side).
#[derive(Debug, Default)]
pub struct Simplex;

impl Simplex {
    /// The identifier carried in simplex objects' marshalled form.
    pub const ID: ScId = ScId::from_name("simplex");

    /// Creates the subcontract instance to register in a domain.
    pub fn new() -> Arc<Simplex> {
        Arc::new(Simplex)
    }

    /// Exports an object on the same-address-space fast path (§5.2.1): no
    /// kernel door is created until the object is first marshalled for
    /// transmission to another domain.
    pub fn export_local(ctx: &Arc<DomainCtx>, disp: Arc<dyn Dispatch>) -> Result<SpringObj> {
        let type_info = disp.type_info();
        ctx.types().register(type_info);
        Ok(SpringObj::assemble(
            ctx.clone(),
            type_info,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(SimplexRepr {
                inner: Mutex::new(SimplexReprInner {
                    state: SimplexState::Local { disp, door: None },
                }),
            }),
        ))
    }

    fn create_server_door(ctx: &Arc<DomainCtx>, disp: Arc<dyn Dispatch>) -> Result<DoorId> {
        let handler = Arc::new(SimplexHandler {
            ctx: ctx.clone(),
            disp,
            dedup: crate::dedup::ReplyCache::default(),
        });
        Ok(ctx.domain().create_door(handler)?)
    }
}

/// Server-side simplex code: strips the control region, forwards the call to
/// the skeleton, and adds the reply control region.
struct SimplexHandler {
    ctx: Arc<DomainCtx>,
    disp: Arc<dyn Dispatch>,
    /// At-most-once reply cache; identity-free calls bypass it.
    dedup: crate::dedup::ReplyCache,
}

impl DoorHandler for SimplexHandler {
    fn unreferenced(&self) {
        self.disp.unreferenced();
    }

    fn invoke(
        &self,
        cctx: &CallCtx,
        msg: Message,
    ) -> std::result::Result<Message, spring_kernel::DoorError> {
        self.dedup.serve(msg, |msg| {
            // Runs on the caller's (shuttled) thread inside the kernel's
            // door_call span, so this parents under it automatically.
            let mut span = spring_trace::span_start(
                "simplex.serve",
                self.ctx.domain().trace_scope(),
                Simplex::ID.raw(),
            );
            let mut args = CommBuffer::from_message(msg);
            let result = (|| {
                let _flags = args.get_u8().map_err(|e| {
                    spring_kernel::DoorError::Handler(format!("bad control region: {e}"))
                })?;
                let mut reply = CommBuffer::pooled();
                reply.put_u8(CTRL_NORMAL);
                let sctx = ServerCtx {
                    ctx: self.ctx.clone(),
                    caller: cctx.caller,
                };
                server_dispatch(&sctx, &*self.disp, &mut args, &mut reply)?;
                Ok(reply.into_message())
            })();
            if result.is_err() {
                span.fail();
            }
            result
        })
    }
}

impl Subcontract for Simplex {
    fn id(&self) -> ScId {
        Self::ID
    }

    fn name(&self) -> &'static str {
        "simplex"
    }

    fn invoke_preamble(&self, _obj: &SpringObj, call: &mut CommBuffer) -> Result<()> {
        call.put_u8(CTRL_NORMAL);
        Ok(())
    }

    fn invoke(&self, obj: &SpringObj, call: CommBuffer) -> Result<CommBuffer> {
        let repr = obj.repr().downcast::<SimplexRepr>(self.name())?;
        // Decide the path under the lock, but run remote calls outside it.
        enum Path {
            Remote(DoorId),
            Local(Arc<dyn Dispatch>),
        }
        let path = {
            let inner = repr.inner.lock();
            match &inner.state {
                SimplexState::Remote(d) => Path::Remote(*d),
                SimplexState::Local { disp, .. } => Path::Local(disp.clone()),
            }
        };
        match path {
            Path::Remote(door) => {
                let reply = obj.ctx().domain().call(door, call.into_message())?;
                let mut reply = CommBuffer::from_message(reply);
                let _flags = reply.get_u8()?;
                Ok(reply)
            }
            Path::Local(disp) => {
                // The same-address-space optimized invocation: no kernel.
                // The buffer was built by our own invoke_preamble, so the
                // read cursor sits at the control byte.
                let mut args = call;
                let _flags = args.get_u8()?;
                let mut reply = CommBuffer::pooled();
                reply.put_u8(CTRL_NORMAL);
                let sctx = ServerCtx {
                    ctx: obj.ctx().clone(),
                    caller: obj.ctx().domain().id(),
                };
                server_dispatch(&sctx, &*disp, &mut args, &mut reply)?;
                let _flags = reply.get_u8()?;
                Ok(reply)
            }
        }
    }

    fn marshal(&self, ctx: &Arc<DomainCtx>, parts: ObjParts, buf: &mut CommBuffer) -> Result<()> {
        let repr = parts.repr.into_downcast::<SimplexRepr>(self.name())?;
        let inner = repr.inner.into_inner();
        let door = match inner.state {
            SimplexState::Remote(d) => d,
            // First transmission of a local object: create the
            // cross-domain resources now (§5.2.1: "When and if the object is
            // actually marshalled ... the subcontract will finally create
            // these resources").
            SimplexState::Local { disp, door } => match door {
                Some(d) => d,
                None => Self::create_server_door(ctx, disp)?,
            },
        };
        put_obj_header(buf, Self::ID, &parts.type_name);
        buf.put_door(door);
        Ok(())
    }

    fn unmarshal(
        &self,
        ctx: &Arc<DomainCtx>,
        expected: &'static TypeInfo,
        buf: &mut CommBuffer,
    ) -> Result<SpringObj> {
        if let Some(obj) = redispatch_if_foreign(Self::ID, ctx, expected, buf)? {
            return Ok(obj);
        }
        let (_, wire_name, actual) = get_obj_header(ctx, expected, buf)?;
        let door = buf.get_door()?;
        Ok(SpringObj::assemble_from_wire(
            ctx.clone(),
            wire_name,
            actual,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(SimplexRepr::remote(door)),
        ))
    }

    fn copy(&self, obj: &SpringObj) -> Result<SpringObj> {
        let repr = obj.repr().downcast::<SimplexRepr>(self.name())?;
        let new_state = {
            let inner = repr.inner.lock();
            match &inner.state {
                SimplexState::Remote(d) => SimplexState::Remote(obj.ctx().domain().copy_door(*d)?),
                // A copy of a local object shares the dispatcher (shallow
                // copy: same underlying state); it grows its own door if it
                // is ever marshalled.
                SimplexState::Local { disp, .. } => SimplexState::Local {
                    disp: disp.clone(),
                    door: None,
                },
            }
        };
        Ok(obj.assemble_like(Repr::new(SimplexRepr {
            inner: Mutex::new(SimplexReprInner { state: new_state }),
        })))
    }

    fn consume(&self, ctx: &Arc<DomainCtx>, parts: ObjParts) -> Result<()> {
        let repr = parts.repr.into_downcast::<SimplexRepr>(self.name())?;
        match repr.inner.into_inner().state {
            SimplexState::Remote(d) => ctx.domain().delete_door(d)?,
            SimplexState::Local { door: Some(d), .. } => ctx.domain().delete_door(d)?,
            SimplexState::Local { door: None, .. } => {}
        }
        Ok(())
    }
}

impl ServerSubcontract for Simplex {
    fn export(&self, ctx: &Arc<DomainCtx>, disp: Arc<dyn Dispatch>) -> Result<SpringObj> {
        let type_info = disp.type_info();
        ctx.types().register(type_info);
        let door = Self::create_server_door(ctx, disp)?;
        Ok(SpringObj::assemble(
            ctx.clone(),
            type_info,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(SimplexRepr::remote(door)),
        ))
    }

    fn revoke(&self, obj: &SpringObj) -> Result<()> {
        let repr = obj.repr().downcast::<SimplexRepr>(self.name())?;
        match repr.remote_door() {
            Some(d) => {
                obj.ctx().domain().revoke_door(d)?;
                Ok(())
            }
            None => Err(subcontract::SpringError::Unsupported(
                "cannot revoke a local object that has no door yet",
            )),
        }
    }
}
