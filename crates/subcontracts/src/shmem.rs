//! The *shmem* subcontract: marshalling into shared memory (§5.1.4).
//!
//! The paper motivates `invoke_preamble` with subcontracts that "use shared
//! memory regions to communicate with their servers. In this case when
//! invoke_preamble is called, the subcontract can adjust the communications
//! buffer to point into the shared memory region so that arguments are
//! directly marshalled into the region, rather than having to be copied
//! there after all marshalling is complete."
//!
//! Layout on the wire: the argument bytes live in the shared region; the
//! kernel message carries only a small descriptor (`region id`, `length`)
//! plus the out-of-band capability vector (door identifiers must always be
//! visible to the kernel and can never live in shared memory). Replies
//! travel on the ordinary (copied) path — they are small for the workloads
//! that want this subcontract, and the asymmetry keeps the handler simple.

use std::sync::Arc;

use spring_buf::CommBuffer;
use spring_kernel::{CallCtx, DoorHandler, DoorId, Message, ShmId, ShmRegion};
use subcontract::{
    get_obj_header, put_obj_header, redispatch_if_foreign, server_dispatch, Dispatch, DomainCtx,
    ObjParts, Repr, Result, ScId, ServerCtx, SpringError, SpringObj, Subcontract, TypeInfo,
};

/// Client representation: the server door, this client's private region, and
/// the region size to advertise when the object moves on.
#[derive(Debug)]
struct ShmemRepr {
    door: DoorId,
    region: ShmRegion,
}

/// The shmem subcontract (client and server side).
#[derive(Debug, Default)]
pub struct Shmem;

impl Shmem {
    /// The identifier carried in shmem objects' marshalled form.
    pub const ID: ScId = ScId::from_name("shmem");

    /// Default region size when none is configured.
    pub const DEFAULT_REGION: usize = 64 * 1024;

    /// Creates the subcontract instance to register in a domain.
    pub fn new() -> Arc<Shmem> {
        Arc::new(Shmem)
    }

    /// Exports an object whose clients marshal arguments straight into a
    /// shared region. `region_size` is advertised to clients, each of which
    /// creates its own private region of that size.
    pub fn export(
        ctx: &Arc<DomainCtx>,
        disp: Arc<dyn Dispatch>,
        region_size: usize,
    ) -> Result<SpringObj> {
        let type_info = disp.type_info();
        ctx.types().register(type_info);
        let handler = Arc::new(ShmemHandler {
            ctx: ctx.clone(),
            disp,
        });
        let door = ctx.domain().create_door(handler)?;
        let region = ctx.domain().kernel().create_shm(region_size);
        Ok(SpringObj::assemble(
            ctx.clone(),
            type_info,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(ShmemRepr { door, region }),
        ))
    }
}

/// Server-side shmem code: maps the region named by the descriptor and reads
/// the arguments in place — no kernel copy of the payload.
struct ShmemHandler {
    ctx: Arc<DomainCtx>,
    disp: Arc<dyn Dispatch>,
}

impl DoorHandler for ShmemHandler {
    fn invoke(
        &self,
        cctx: &CallCtx,
        msg: Message,
    ) -> std::result::Result<Message, spring_kernel::DoorError> {
        let doors = msg.doors;
        let mut desc = CommBuffer::from_message(Message::from_bytes(msg.bytes));
        let (region_id, len) =
            (|| -> Result<(u64, u64)> { Ok((desc.get_u64()?, desc.get_u64()?)) })().map_err(
                |e| spring_kernel::DoorError::Handler(format!("bad shm descriptor: {e}")),
            )?;
        let _ = len;
        let region = self
            .ctx
            .domain()
            .kernel()
            .lookup_shm(ShmId::from_raw(region_id))?;
        let mapped = region.map_mut()?;

        let mut args = CommBuffer::from_shm(mapped, doors);
        let mut reply = CommBuffer::new();
        let sctx = ServerCtx {
            ctx: self.ctx.clone(),
            caller: cctx.caller,
        };
        server_dispatch(&sctx, &*self.disp, &mut args, &mut reply)?;
        Ok(reply.into_message())
    }
}

impl Subcontract for Shmem {
    fn id(&self) -> ScId {
        Self::ID
    }

    fn name(&self) -> &'static str {
        "shmem"
    }

    fn invoke_preamble(&self, obj: &SpringObj, call: &mut CommBuffer) -> Result<()> {
        // Redirect the buffer into the shared region before any argument
        // marshalling happens — the whole point of invoke_preamble.
        let repr = obj.repr().downcast::<ShmemRepr>(self.name())?;
        call.redirect_to_shm(repr.region.map_mut()?)?;
        Ok(())
    }

    fn invoke(&self, obj: &SpringObj, call: CommBuffer) -> Result<CommBuffer> {
        let repr = obj.repr().downcast::<ShmemRepr>(self.name())?;
        if !call.is_shm_backed() {
            return Err(SpringError::Unsupported(
                "shmem invoke requires a call built via start_call",
            ));
        }
        let (mapped, len, caps) = call.take_shm()?;
        drop(mapped); // Publish the marshalled arguments to the region.

        let mut desc = CommBuffer::new();
        desc.put_u64(repr.region.id().raw());
        desc.put_u64(len as u64);
        let mut msg = desc.into_message();
        msg.doors = caps;

        let reply = obj.ctx().domain().call(repr.door, msg)?;
        Ok(CommBuffer::from_message(reply))
    }

    fn marshal(&self, ctx: &Arc<DomainCtx>, parts: ObjParts, buf: &mut CommBuffer) -> Result<()> {
        let repr = parts.repr.into_downcast::<ShmemRepr>(self.name())?;
        put_obj_header(buf, Self::ID, &parts.type_name);
        buf.put_door(repr.door);
        buf.put_u64(repr.region.size() as u64);
        // The region is private to this client; destroy it with the object.
        ctx.domain().kernel().destroy_shm(repr.region.id());
        Ok(())
    }

    fn unmarshal(
        &self,
        ctx: &Arc<DomainCtx>,
        expected: &'static TypeInfo,
        buf: &mut CommBuffer,
    ) -> Result<SpringObj> {
        if let Some(obj) = redispatch_if_foreign(Self::ID, ctx, expected, buf)? {
            return Ok(obj);
        }
        let (_, wire_name, actual) = get_obj_header(ctx, expected, buf)?;
        let door = buf.get_door()?;
        let size = buf.get_u64()? as usize;
        let region = ctx.domain().kernel().create_shm(size);
        Ok(SpringObj::assemble_from_wire(
            ctx.clone(),
            wire_name,
            actual,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(ShmemRepr { door, region }),
        ))
    }

    fn copy(&self, obj: &SpringObj) -> Result<SpringObj> {
        let repr = obj.repr().downcast::<ShmemRepr>(self.name())?;
        let door = obj.ctx().domain().copy_door(repr.door)?;
        // Each object gets its own region: regions are single-mapper.
        let region = obj.ctx().domain().kernel().create_shm(repr.region.size());
        Ok(obj.assemble_like(Repr::new(ShmemRepr { door, region })))
    }

    fn consume(&self, ctx: &Arc<DomainCtx>, parts: ObjParts) -> Result<()> {
        let repr = parts.repr.into_downcast::<ShmemRepr>(self.name())?;
        ctx.domain().kernel().destroy_shm(repr.region.id());
        ctx.domain().delete_door(repr.door)?;
        Ok(())
    }
}
