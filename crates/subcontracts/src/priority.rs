//! The *priority* subcontract: one of the paper's future directions (§8.4).
//!
//! "Another is to develop a subcontract that transfers scheduling priority
//! information between clients and servers for time-critical operations."
//! The paper's point is that such subcontracts can be written by third
//! parties without modifying the base system — and indeed this module uses
//! only the public `subcontract` API: `invoke_preamble` piggybacks the
//! caller's priority *and enqueue timestamp* in the control region, and the
//! server-side subcontract publishes the priority to the servant for the
//! duration of the call.
//!
//! The enqueue timestamp is what makes the priority subcontract earn its
//! keep under overload: [`Priority::export_with_admission`] wraps the
//! server in an admission controller that measures each call's queue delay
//! (now − enqueue stamp) and sheds low-priority calls with a typed
//! [`subcontract::SpringError::Overloaded`] reply when the delay exceeds a bound.
//! Rejection costs microseconds instead of a full service time, so the
//! server keeps serving admitted calls at bounded latency instead of
//! letting the queue — and everyone's tail — grow without limit (the E15
//! knee experiment). Each shed is recorded as a failed `priority.shed` span
//! so shedding is visible in traces and latency histograms.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use spring_buf::CommBuffer;
use spring_kernel::{CallCtx, DoorHandler, DoorId, Message};
use subcontract::{
    encode_overloaded, get_obj_header, put_obj_header, redispatch_if_foreign, server_dispatch,
    Dispatch, DomainCtx, ObjParts, Repr, Result, ScId, ServerCtx, ServerSubcontract, SpringObj,
    Subcontract, TypeInfo,
};

/// Span key recorded (failed) for every call the admission controller
/// sheds; keyed under [`Priority::ID`], so sheds show up both in trace
/// trees and in the `(priority, "priority.shed")` latency histogram.
pub const SHED_SPAN: &str = "priority.shed";

thread_local! {
    /// The priority of the call currently executing on this thread, set by
    /// the server-side priority subcontract. Door calls run on the caller's
    /// thread, so thread-local scope is exactly call scope.
    static CURRENT_CALL_PRIORITY: Cell<u32> = const { Cell::new(0) };

    /// Enqueue timestamp (trace-epoch ns) to stamp on the *next* priority
    /// call issued from this thread, set by an open-loop load generator so
    /// the server sees queue delay measured from the intended start time.
    /// Consumed by `invoke_preamble`; `None` means "stamp at send".
    static PENDING_ENQUEUE_NS: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Reads the priority of the in-flight call (0 outside one) — what a
/// time-critical servant consults to order its work.
pub fn current_call_priority() -> u32 {
    CURRENT_CALL_PRIORITY.with(Cell::get)
}

/// Stamps the next priority call issued from this thread as having been
/// enqueued at `ns` (trace-epoch nanoseconds, see [`spring_trace::now_ns`]).
///
/// An open-loop generator sets this to the call's *intended* start time, so
/// the server's admission controller measures true queue delay — including
/// the time the call spent waiting for a free caller thread — rather than
/// just the wire time (the coordinated-omission discipline, server side).
/// Without a stamp, `invoke_preamble` uses the send time.
pub fn stamp_enqueue_ns(ns: u64) {
    PENDING_ENQUEUE_NS.with(|c| c.set(Some(ns)));
}

/// Admission-control policy for [`Priority::export_with_admission`].
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Queue-delay bound: calls arriving with more measured queue delay
    /// than this are candidates for shedding.
    pub queue_bound: Duration,
    /// Calls with priority below this value are shed when over the bound;
    /// calls at or above it are always served (they paid for the
    /// fast-rejection headroom).
    pub shed_below: u32,
}

/// Counters published by an admission controller — hardware-independent
/// evidence of what shedding did during a run.
#[derive(Debug, Default)]
pub struct AdmissionStats {
    admitted: AtomicU64,
    shed: AtomicU64,
    max_queue_ns: AtomicU64,
}

impl AdmissionStats {
    /// Calls that passed admission and were served.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Calls rejected with [`subcontract::SpringError::Overloaded`].
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Largest queue delay the controller measured, in nanoseconds.
    pub fn max_queue_ns(&self) -> u64 {
        self.max_queue_ns.load(Ordering::Relaxed)
    }
}

/// Client representation: the door plus this object's current priority.
#[derive(Debug)]
struct PriorityRepr {
    door: DoorId,
    priority: AtomicU32,
}

/// The priority subcontract (client and server side).
#[derive(Debug, Default)]
pub struct Priority;

impl Priority {
    /// The identifier carried in priority objects' marshalled form.
    pub const ID: ScId = ScId::from_name("priority");

    /// Creates the subcontract instance to register in a domain.
    pub fn new() -> Arc<Priority> {
        Arc::new(Priority)
    }

    /// Sets the priority future calls on this object will carry.
    pub fn set_priority(obj: &SpringObj, priority: u32) -> Result<()> {
        let repr = obj.repr().downcast::<PriorityRepr>("priority")?;
        repr.priority.store(priority, Ordering::Relaxed);
        Ok(())
    }

    /// The priority currently configured on this object.
    pub fn priority(obj: &SpringObj) -> Result<u32> {
        let repr = obj.repr().downcast::<PriorityRepr>("priority")?;
        Ok(repr.priority.load(Ordering::Relaxed))
    }
}

/// Server-side priority code: publishes the piggybacked priority for the
/// call's duration, then forwards to the skeleton. When an admission
/// policy is configured, calls are triaged first: low-priority calls that
/// have already waited longer than the queue bound are rejected in
/// microseconds with [`subcontract::SpringError::Overloaded`] instead of consuming a
/// full service time the server cannot afford.
struct PriorityHandler {
    ctx: Arc<DomainCtx>,
    disp: Arc<dyn Dispatch>,
    /// Highest priority observed (a stand-in for a scheduler hook).
    max_seen: AtomicU32,
    admission: Option<(AdmissionConfig, Arc<AdmissionStats>)>,
}

impl DoorHandler for PriorityHandler {
    fn invoke(
        &self,
        cctx: &CallCtx,
        msg: Message,
    ) -> std::result::Result<Message, spring_kernel::DoorError> {
        let mut args = CommBuffer::from_message(msg);
        let priority = args
            .get_u32()
            .map_err(|e| spring_kernel::DoorError::Handler(format!("bad priority control: {e}")))?;
        let enqueue_ns = args
            .get_u64()
            .map_err(|e| spring_kernel::DoorError::Handler(format!("bad enqueue stamp: {e}")))?;
        self.max_seen.fetch_max(priority, Ordering::Relaxed);

        if let Some((cfg, stats)) = &self.admission {
            let queue_ns = spring_trace::now_ns().saturating_sub(enqueue_ns);
            stats.max_queue_ns.fetch_max(queue_ns, Ordering::Relaxed);
            if queue_ns > cfg.queue_bound.as_nanos() as u64 && priority < cfg.shed_below {
                stats.shed.fetch_add(1, Ordering::Relaxed);
                let mut span = spring_trace::span_start(
                    SHED_SPAN,
                    self.ctx.domain().trace_scope(),
                    Priority::ID.raw(),
                );
                span.fail();
                drop(span);
                let mut reply = CommBuffer::new();
                encode_overloaded(&mut reply, queue_ns);
                return Ok(reply.into_message());
            }
            stats.admitted.fetch_add(1, Ordering::Relaxed);
        }

        // Publish for the servant; restore afterwards (calls can nest).
        let previous = CURRENT_CALL_PRIORITY.with(|c| c.replace(priority));
        let result = (|| {
            let mut reply = CommBuffer::new();
            let sctx = ServerCtx {
                ctx: self.ctx.clone(),
                caller: cctx.caller,
            };
            server_dispatch(&sctx, &*self.disp, &mut args, &mut reply)?;
            Ok(reply.into_message())
        })();
        CURRENT_CALL_PRIORITY.with(|c| c.set(previous));
        result
    }
}

impl Subcontract for Priority {
    fn id(&self) -> ScId {
        Self::ID
    }

    fn name(&self) -> &'static str {
        "priority"
    }

    fn invoke_preamble(&self, obj: &SpringObj, call: &mut CommBuffer) -> Result<()> {
        // Transfer the scheduling priority in the control region (§8.4),
        // plus the enqueue timestamp the admission controller subtracts
        // from its own clock to measure queue delay.
        let repr = obj.repr().downcast::<PriorityRepr>(self.name())?;
        call.put_u32(repr.priority.load(Ordering::Relaxed));
        let enqueue_ns = PENDING_ENQUEUE_NS
            .with(Cell::take)
            .unwrap_or_else(spring_trace::now_ns);
        call.put_u64(enqueue_ns);
        Ok(())
    }

    fn invoke(&self, obj: &SpringObj, call: CommBuffer) -> Result<CommBuffer> {
        let repr = obj.repr().downcast::<PriorityRepr>(self.name())?;
        let reply = obj.ctx().domain().call(repr.door, call.into_message())?;
        Ok(CommBuffer::from_message(reply))
    }

    fn marshal(&self, _ctx: &Arc<DomainCtx>, parts: ObjParts, buf: &mut CommBuffer) -> Result<()> {
        let repr = parts.repr.into_downcast::<PriorityRepr>(self.name())?;
        put_obj_header(buf, Self::ID, &parts.type_name);
        buf.put_door(repr.door);
        // The configured priority travels with the object.
        buf.put_u32(repr.priority.load(Ordering::Relaxed));
        Ok(())
    }

    fn unmarshal(
        &self,
        ctx: &Arc<DomainCtx>,
        expected: &'static TypeInfo,
        buf: &mut CommBuffer,
    ) -> Result<SpringObj> {
        if let Some(obj) = redispatch_if_foreign(Self::ID, ctx, expected, buf)? {
            return Ok(obj);
        }
        let (_, wire_name, actual) = get_obj_header(ctx, expected, buf)?;
        let door = buf.get_door()?;
        let priority = buf.get_u32()?;
        Ok(SpringObj::assemble_from_wire(
            ctx.clone(),
            wire_name,
            actual,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(PriorityRepr {
                door,
                priority: AtomicU32::new(priority),
            }),
        ))
    }

    fn copy(&self, obj: &SpringObj) -> Result<SpringObj> {
        let repr = obj.repr().downcast::<PriorityRepr>(self.name())?;
        let door = obj.ctx().domain().copy_door(repr.door)?;
        Ok(obj.assemble_like(Repr::new(PriorityRepr {
            door,
            priority: AtomicU32::new(repr.priority.load(Ordering::Relaxed)),
        })))
    }

    fn consume(&self, ctx: &Arc<DomainCtx>, parts: ObjParts) -> Result<()> {
        let repr = parts.repr.into_downcast::<PriorityRepr>(self.name())?;
        ctx.domain().delete_door(repr.door)?;
        Ok(())
    }
}

impl Priority {
    fn export_inner(
        ctx: &Arc<DomainCtx>,
        disp: Arc<dyn Dispatch>,
        admission: Option<(AdmissionConfig, Arc<AdmissionStats>)>,
    ) -> Result<SpringObj> {
        let type_info = disp.type_info();
        ctx.types().register(type_info);
        let handler = Arc::new(PriorityHandler {
            ctx: ctx.clone(),
            disp,
            max_seen: AtomicU32::new(0),
            admission,
        });
        let door = ctx.domain().create_door(handler)?;
        Ok(SpringObj::assemble(
            ctx.clone(),
            type_info,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(PriorityRepr {
                door,
                priority: AtomicU32::new(0),
            }),
        ))
    }

    /// Exports a servant behind an admission controller: calls whose
    /// measured queue delay exceeds `cfg.queue_bound` and whose priority is
    /// below `cfg.shed_below` are rejected with
    /// [`subcontract::SpringError::Overloaded`] before reaching the servant. Returns
    /// the exported object plus the controller's live counters.
    pub fn export_with_admission(
        ctx: &Arc<DomainCtx>,
        disp: Arc<dyn Dispatch>,
        cfg: AdmissionConfig,
    ) -> Result<(SpringObj, Arc<AdmissionStats>)> {
        let stats = Arc::new(AdmissionStats::default());
        let obj = Self::export_inner(ctx, disp, Some((cfg, stats.clone())))?;
        Ok((obj, stats))
    }
}

impl ServerSubcontract for Priority {
    fn export(&self, ctx: &Arc<DomainCtx>, disp: Arc<dyn Dispatch>) -> Result<SpringObj> {
        Self::export_inner(ctx, disp, None)
    }
}
