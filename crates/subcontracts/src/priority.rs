//! The *priority* subcontract: one of the paper's future directions (§8.4).
//!
//! "Another is to develop a subcontract that transfers scheduling priority
//! information between clients and servers for time-critical operations."
//! The paper's point is that such subcontracts can be written by third
//! parties without modifying the base system — and indeed this module uses
//! only the public `subcontract` API: `invoke_preamble` piggybacks the
//! caller's priority in the control region, and the server-side subcontract
//! publishes it to the servant for the duration of the call.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use spring_buf::CommBuffer;
use spring_kernel::{CallCtx, DoorHandler, DoorId, Message};
use subcontract::{
    get_obj_header, put_obj_header, redispatch_if_foreign, server_dispatch, Dispatch, DomainCtx,
    ObjParts, Repr, Result, ScId, ServerCtx, ServerSubcontract, SpringObj, Subcontract, TypeInfo,
};

thread_local! {
    /// The priority of the call currently executing on this thread, set by
    /// the server-side priority subcontract. Door calls run on the caller's
    /// thread, so thread-local scope is exactly call scope.
    static CURRENT_CALL_PRIORITY: Cell<u32> = const { Cell::new(0) };
}

/// Reads the priority of the in-flight call (0 outside one) — what a
/// time-critical servant consults to order its work.
pub fn current_call_priority() -> u32 {
    CURRENT_CALL_PRIORITY.with(Cell::get)
}

/// Client representation: the door plus this object's current priority.
#[derive(Debug)]
struct PriorityRepr {
    door: DoorId,
    priority: AtomicU32,
}

/// The priority subcontract (client and server side).
#[derive(Debug, Default)]
pub struct Priority;

impl Priority {
    /// The identifier carried in priority objects' marshalled form.
    pub const ID: ScId = ScId::from_name("priority");

    /// Creates the subcontract instance to register in a domain.
    pub fn new() -> Arc<Priority> {
        Arc::new(Priority)
    }

    /// Sets the priority future calls on this object will carry.
    pub fn set_priority(obj: &SpringObj, priority: u32) -> Result<()> {
        let repr = obj.repr().downcast::<PriorityRepr>("priority")?;
        repr.priority.store(priority, Ordering::Relaxed);
        Ok(())
    }

    /// The priority currently configured on this object.
    pub fn priority(obj: &SpringObj) -> Result<u32> {
        let repr = obj.repr().downcast::<PriorityRepr>("priority")?;
        Ok(repr.priority.load(Ordering::Relaxed))
    }
}

/// Server-side priority code: publishes the piggybacked priority for the
/// call's duration, then forwards to the skeleton.
struct PriorityHandler {
    ctx: Arc<DomainCtx>,
    disp: Arc<dyn Dispatch>,
    /// Highest priority observed (a stand-in for a scheduler hook).
    max_seen: AtomicU32,
}

impl DoorHandler for PriorityHandler {
    fn invoke(
        &self,
        cctx: &CallCtx,
        msg: Message,
    ) -> std::result::Result<Message, spring_kernel::DoorError> {
        let mut args = CommBuffer::from_message(msg);
        let priority = args
            .get_u32()
            .map_err(|e| spring_kernel::DoorError::Handler(format!("bad priority control: {e}")))?;
        self.max_seen.fetch_max(priority, Ordering::Relaxed);

        // Publish for the servant; restore afterwards (calls can nest).
        let previous = CURRENT_CALL_PRIORITY.with(|c| c.replace(priority));
        let result = (|| {
            let mut reply = CommBuffer::new();
            let sctx = ServerCtx {
                ctx: self.ctx.clone(),
                caller: cctx.caller,
            };
            server_dispatch(&sctx, &*self.disp, &mut args, &mut reply)?;
            Ok(reply.into_message())
        })();
        CURRENT_CALL_PRIORITY.with(|c| c.set(previous));
        result
    }
}

impl Subcontract for Priority {
    fn id(&self) -> ScId {
        Self::ID
    }

    fn name(&self) -> &'static str {
        "priority"
    }

    fn invoke_preamble(&self, obj: &SpringObj, call: &mut CommBuffer) -> Result<()> {
        // Transfer the scheduling priority in the control region (§8.4).
        let repr = obj.repr().downcast::<PriorityRepr>(self.name())?;
        call.put_u32(repr.priority.load(Ordering::Relaxed));
        Ok(())
    }

    fn invoke(&self, obj: &SpringObj, call: CommBuffer) -> Result<CommBuffer> {
        let repr = obj.repr().downcast::<PriorityRepr>(self.name())?;
        let reply = obj.ctx().domain().call(repr.door, call.into_message())?;
        Ok(CommBuffer::from_message(reply))
    }

    fn marshal(&self, _ctx: &Arc<DomainCtx>, parts: ObjParts, buf: &mut CommBuffer) -> Result<()> {
        let repr = parts.repr.into_downcast::<PriorityRepr>(self.name())?;
        put_obj_header(buf, Self::ID, &parts.type_name);
        buf.put_door(repr.door);
        // The configured priority travels with the object.
        buf.put_u32(repr.priority.load(Ordering::Relaxed));
        Ok(())
    }

    fn unmarshal(
        &self,
        ctx: &Arc<DomainCtx>,
        expected: &'static TypeInfo,
        buf: &mut CommBuffer,
    ) -> Result<SpringObj> {
        if let Some(obj) = redispatch_if_foreign(Self::ID, ctx, expected, buf)? {
            return Ok(obj);
        }
        let (_, wire_name, actual) = get_obj_header(ctx, expected, buf)?;
        let door = buf.get_door()?;
        let priority = buf.get_u32()?;
        Ok(SpringObj::assemble_from_wire(
            ctx.clone(),
            wire_name,
            actual,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(PriorityRepr {
                door,
                priority: AtomicU32::new(priority),
            }),
        ))
    }

    fn copy(&self, obj: &SpringObj) -> Result<SpringObj> {
        let repr = obj.repr().downcast::<PriorityRepr>(self.name())?;
        let door = obj.ctx().domain().copy_door(repr.door)?;
        Ok(obj.assemble_like(Repr::new(PriorityRepr {
            door,
            priority: AtomicU32::new(repr.priority.load(Ordering::Relaxed)),
        })))
    }

    fn consume(&self, ctx: &Arc<DomainCtx>, parts: ObjParts) -> Result<()> {
        let repr = parts.repr.into_downcast::<PriorityRepr>(self.name())?;
        ctx.domain().delete_door(repr.door)?;
        Ok(())
    }
}

impl ServerSubcontract for Priority {
    fn export(&self, ctx: &Arc<DomainCtx>, disp: Arc<dyn Dispatch>) -> Result<SpringObj> {
        let type_info = disp.type_info();
        ctx.types().register(type_info);
        let handler = Arc::new(PriorityHandler {
            ctx: ctx.clone(),
            disp,
            max_seen: AtomicU32::new(0),
        });
        let door = ctx.domain().create_door(handler)?;
        Ok(SpringObj::assemble(
            ctx.clone(),
            type_info,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(PriorityRepr {
                door,
                priority: AtomicU32::new(0),
            }),
        ))
    }
}
