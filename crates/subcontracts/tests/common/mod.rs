//! Shared fixtures: a counter servant, context setup, an object-shipping
//! helper, and an in-memory resolver.
#![allow(dead_code)] // Each test binary uses a different subset.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use spring_buf::CommBuffer;
use spring_kernel::Kernel;
use spring_subcontracts::register_standard;
use subcontract::{
    encode_ok, encode_user_exception, op_hash, unmarshal_object, Dispatch, DomainCtx, Resolver,
    Result, ServerCtx, SpringError, SpringObj, TypeInfo, OBJECT_TYPE,
};

/// Test interface: a mutable counter.
pub static COUNTER_TYPE: TypeInfo = TypeInfo {
    name: "counter",
    parents: &[&OBJECT_TYPE],
    default_subcontract: spring_subcontracts::Singleton::ID,
};

pub const OP_GET: u32 = op_hash("get");
pub const OP_ADD: u32 = op_hash("add");
pub const OP_FAIL: u32 = op_hash("fail");
pub const OP_ECHO: u32 = op_hash("echo");

/// A counter servant; `add` mutates, `get` reads, `fail` raises, `echo`
/// bounces a byte payload.
#[derive(Default)]
pub struct CounterServant {
    pub value: Mutex<i64>,
}

impl CounterServant {
    pub fn new(start: i64) -> Arc<Self> {
        Arc::new(CounterServant {
            value: Mutex::new(start),
        })
    }
}

impl Dispatch for CounterServant {
    fn type_info(&self) -> &'static TypeInfo {
        &COUNTER_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        match op {
            x if x == OP_GET => {
                encode_ok(reply);
                reply.put_i64(*self.value.lock());
                Ok(())
            }
            x if x == OP_ADD => {
                let delta = args.get_i64()?;
                let mut v = self.value.lock();
                *v += delta;
                encode_ok(reply);
                reply.put_i64(*v);
                Ok(())
            }
            x if x == OP_FAIL => {
                encode_user_exception(reply, "counter_error");
                reply.put_string("requested failure");
                Ok(())
            }
            x if x == OP_ECHO => {
                let payload = args.get_bytes()?;
                encode_ok(reply);
                reply.put_bytes(&payload);
                Ok(())
            }
            other => Err(SpringError::UnknownOp(other)),
        }
    }
}

/// Creates a domain with the standard subcontracts registered and the
/// counter type known.
pub fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    ctx.types().register(&COUNTER_TYPE);
    ctx
}

/// Typed convenience wrapper playing the role of generated counter stubs.
pub struct CounterClient(pub SpringObj);

impl CounterClient {
    pub fn get(&self) -> Result<i64> {
        let call = self.0.start_call(OP_GET)?;
        let mut reply = self.0.invoke(call)?;
        expect_ok(&mut reply)?;
        Ok(reply.get_i64()?)
    }

    pub fn add(&self, delta: i64) -> Result<i64> {
        let mut call = self.0.start_call(OP_ADD)?;
        call.put_i64(delta);
        let mut reply = self.0.invoke(call)?;
        expect_ok(&mut reply)?;
        Ok(reply.get_i64()?)
    }

    pub fn fail(&self) -> Result<()> {
        let call = self.0.start_call(OP_FAIL)?;
        let mut reply = self.0.invoke(call)?;
        expect_ok(&mut reply)?;
        Ok(())
    }

    pub fn echo(&self, payload: &[u8]) -> Result<Vec<u8>> {
        let mut call = self.0.start_call(OP_ECHO)?;
        call.put_bytes(payload);
        let mut reply = self.0.invoke(call)?;
        expect_ok(&mut reply)?;
        Ok(reply.get_bytes()?)
    }
}

fn expect_ok(reply: &mut CommBuffer) -> Result<()> {
    match subcontract::decode_reply_status(reply)? {
        subcontract::ReplyStatus::Ok => Ok(()),
        subcontract::ReplyStatus::UserException(name) => {
            Err(SpringError::UnknownUserException(name))
        }
    }
}

/// Moves an object from one domain to another the way a real call would:
/// marshal, transfer the capability vector through the kernel, unmarshal.
pub fn ship(obj: SpringObj, to: &Arc<DomainCtx>, expected: &'static TypeInfo) -> Result<SpringObj> {
    let from_ctx = obj.ctx().clone();
    let mut buf = CommBuffer::new();
    obj.marshal(&mut buf)?;
    let mut msg = buf.into_message();
    let mut moved = Vec::with_capacity(msg.doors.len());
    for d in msg.doors {
        moved.push(from_ctx.domain().transfer_door(d, to.domain())?);
    }
    msg.doors = moved;
    let mut buf = CommBuffer::from_message(msg);
    unmarshal_object(to, expected, &mut buf)
}

/// Ships a copy, leaving the original in place.
pub fn ship_copy(
    obj: &SpringObj,
    to: &Arc<DomainCtx>,
    expected: &'static TypeInfo,
) -> Result<SpringObj> {
    ship(obj.copy()?, to, expected)
}

type Binding = (Arc<DomainCtx>, SpringObj);

/// A process-wide name table for tests: binds objects, resolves them into
/// the asking domain by marshal-copy + ship.
#[derive(Default)]
pub struct TestNames {
    entries: Mutex<HashMap<String, Binding>>,
}

impl TestNames {
    pub fn new() -> Arc<Self> {
        Arc::new(TestNames::default())
    }

    pub fn bind(&self, name: &str, obj: SpringObj) {
        let ctx = obj.ctx().clone();
        self.entries.lock().insert(name.to_owned(), (ctx, obj));
    }

    pub fn unbind(&self, name: &str) {
        self.entries.lock().remove(name);
    }

    /// A per-domain resolver view over this table.
    pub fn resolver_for(self: &Arc<Self>, ctx: &Arc<DomainCtx>) -> Arc<dyn Resolver> {
        Arc::new(TestResolver {
            names: self.clone(),
            ctx: ctx.clone(),
        })
    }
}

struct TestResolver {
    names: Arc<TestNames>,
    ctx: Arc<DomainCtx>,
}

impl Resolver for TestResolver {
    fn resolve(&self, name: &str, expected: &'static TypeInfo) -> Result<SpringObj> {
        let (src_ctx, buf) = {
            let entries = self.names.entries.lock();
            let (src_ctx, obj) = entries
                .get(name)
                .ok_or_else(|| SpringError::ResolveFailed(name.to_owned()))?;
            let mut buf = CommBuffer::new();
            obj.marshal_copy(&mut buf)?;
            (src_ctx.clone(), buf)
        };
        let mut msg = buf.into_message();
        let mut moved = Vec::with_capacity(msg.doors.len());
        for d in msg.doors {
            moved.push(src_ctx.domain().transfer_door(d, self.ctx.domain())?);
        }
        msg.doors = moved;
        let mut buf = CommBuffer::from_message(msg);
        unmarshal_object(&self.ctx, expected, &mut buf)
    }
}
