//! Uniform-model conformance matrix (paper §8.5): every subcontract, the
//! same battery. "The basic subcontract interfaces are sufficiently general
//! that they can accommodate a wide range of possible solutions, while still
//! providing a uniform application model."

mod common;

use std::any::Any;
use std::sync::Arc;

use common::{ctx_on, ship, CounterClient, CounterServant, TestNames, COUNTER_TYPE, OP_GET};
use spring_kernel::Kernel;
use spring_subcontracts::priority::Priority;
use spring_subcontracts::stream::Stream;
use spring_subcontracts::txn::Txn;
use spring_subcontracts::{
    CacheManager, Caching, ClusterServer, Reconnectable, ReplicaGroup, RepliconServer, Shmem,
    Simplex, Singleton,
};
use subcontract::{DomainCtx, ServerSubcontract, SpringError, SpringObj};

/// One subcontract's entry: its name, an exported counter object starting at
/// 10, and whatever must stay alive for it to keep working.
struct Subject {
    name: &'static str,
    obj: SpringObj,
    #[allow(dead_code)]
    keep_alive: Vec<Box<dyn Any>>,
}

/// Builds one subject per subcontract, plus the client context objects are
/// shipped into for the battery.
fn subjects(kernel: &Kernel) -> (Vec<Subject>, Arc<DomainCtx>) {
    let server = ctx_on(kernel, "server");
    let client = ctx_on(kernel, "client");
    for ctx in [&server, &client] {
        ctx.register_subcontract(Priority::new());
        ctx.register_subcontract(Txn::new());
        ctx.register_subcontract(Stream::new());
    }

    // The caching subject needs a machine-local cache manager.
    let names = TestNames::new();
    let mgr_ctx = ctx_on(kernel, "manager");
    let manager = CacheManager::new(&mgr_ctx, [OP_GET]);
    names.bind("cache_manager", manager.export().unwrap());
    client.set_resolver(names.resolver_for(&client));
    server.set_resolver(names.resolver_for(&server));

    let mut subjects = Vec::new();
    let mut add = |name, obj: SpringObj, keep: Vec<Box<dyn Any>>| {
        subjects.push(Subject {
            name,
            obj,
            keep_alive: keep,
        })
    };

    add(
        "singleton",
        Singleton.export(&server, CounterServant::new(10)).unwrap(),
        vec![],
    );
    add(
        "simplex",
        Simplex.export(&server, CounterServant::new(10)).unwrap(),
        vec![],
    );
    add(
        "simplex-local",
        Simplex::export_local(&server, CounterServant::new(10)).unwrap(),
        vec![],
    );
    {
        let cluster = ClusterServer::new(&server).unwrap();
        add(
            "cluster",
            cluster.export(CounterServant::new(10)).unwrap(),
            vec![Box::new(cluster)],
        );
    }
    {
        let group = ReplicaGroup::new();
        let servant = CounterServant::new(10);
        for i in 0..2 {
            let ctx = ctx_on(kernel, &format!("replica-{i}"));
            group
                .add(RepliconServer::new(&ctx, servant.clone()).unwrap())
                .unwrap();
        }
        let obj = group.object_for(&server).unwrap();
        add("replicon", obj, vec![Box::new(group)]);
    }
    add(
        "caching",
        Caching::export(&server, CounterServant::new(10), "cache_manager").unwrap(),
        vec![Box::new(manager)],
    );
    add(
        "reconnectable",
        Reconnectable::export(&server, CounterServant::new(10), "svc/x").unwrap(),
        vec![],
    );
    add(
        "shmem",
        Shmem::export(&server, CounterServant::new(10), 4096).unwrap(),
        vec![],
    );
    add(
        "priority",
        Priority.export(&server, CounterServant::new(10)).unwrap(),
        vec![],
    );
    {
        let (obj, stats) = Txn::export_with_journal(&server, CounterServant::new(10)).unwrap();
        add("txn", obj, vec![Box::new(stats)]);
    }
    {
        let (obj, stats) = Stream::export(
            &server,
            CounterServant::new(10),
            Arc::new(|_: u64, _: &[u8]| {}),
        )
        .unwrap();
        add("stream", obj, vec![Box::new(stats)]);
    }

    (subjects, client)
}

#[test]
fn every_subcontract_invokes_uniformly() {
    let kernel = Kernel::new("matrix");
    let (subjects, _client) = subjects(&kernel);
    for s in subjects {
        let c = CounterClient(s.obj);
        assert_eq!(c.get().unwrap(), 10, "{}: get", s.name);
        assert_eq!(c.add(1).unwrap(), 11, "{}: add", s.name);
        assert_eq!(c.echo(b"abc").unwrap(), b"abc", "{}: echo", s.name);
    }
}

#[test]
fn every_subcontract_copies_sharing_state() {
    let kernel = Kernel::new("matrix");
    let (subjects, _client) = subjects(&kernel);
    for s in subjects {
        let copy = CounterClient(s.obj.copy().unwrap_or_else(|e| {
            panic!("{}: copy failed: {e}", s.name);
        }));
        let orig = CounterClient(s.obj);
        orig.add(5).unwrap();
        assert_eq!(copy.get().unwrap(), 15, "{}: copy shares state", s.name);
        copy.0.consume().unwrap();
        assert_eq!(orig.get().unwrap(), 15, "{}: original survives", s.name);
    }
}

#[test]
fn every_subcontract_marshals_roundtrip() {
    let kernel = Kernel::new("matrix");
    let (subjects, client) = subjects(&kernel);
    for s in subjects {
        let moved = ship(s.obj, &client, &COUNTER_TYPE)
            .unwrap_or_else(|e| panic!("{}: ship failed: {e}", s.name));
        assert_eq!(
            moved.subcontract().name(),
            if s.name.starts_with("simplex") {
                "simplex"
            } else {
                s.name
            },
            "{}: subcontract survives marshalling",
            s.name
        );
        assert_eq!(
            CounterClient(moved).get().unwrap(),
            10,
            "{}: works after move",
            s.name
        );
    }
}

#[test]
fn every_subcontract_consumes_cleanly() {
    let kernel = Kernel::new("matrix");
    let (subjects, _client) = subjects(&kernel);
    for s in subjects {
        s.obj
            .consume()
            .unwrap_or_else(|e| panic!("{}: consume failed: {e}", s.name));
    }
}

#[test]
fn every_subcontract_reports_unknown_ops() {
    let kernel = Kernel::new("matrix");
    let (subjects, _client) = subjects(&kernel);
    for s in subjects {
        let call = s.obj.start_call(0xDEAD_FACE).unwrap();
        let mut reply = s.obj.invoke(call).unwrap();
        match subcontract::decode_reply_status(&mut reply) {
            Err(SpringError::UnknownOp(op)) => assert_eq!(op, 0xDEAD_FACE, "{}", s.name),
            other => panic!("{}: expected unknown op, got {other:?}", s.name),
        }
    }
}
