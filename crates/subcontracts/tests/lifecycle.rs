//! The §7 life cycle on singleton and simplex: birth, transmission,
//! invocation, copying, death, and revocation — plus the same-address-space
//! fast path.

mod common;

use std::sync::Arc;

use common::{ctx_on, ship, ship_copy, CounterClient, CounterServant, COUNTER_TYPE};
use spring_kernel::{DoorError, Kernel};
use spring_subcontracts::{Simplex, Singleton};
use subcontract::{ServerSubcontract, SpringError};

#[test]
fn singleton_full_lifecycle() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    // Birth: the server creates a Spring object from a language-level object.
    let servant = CounterServant::new(10);
    let obj = Singleton.export(&server, servant.clone()).unwrap();

    // Transmission: the object moves to the client's address space.
    let obj = ship(obj, &client, &COUNTER_TYPE).unwrap();
    let counter = CounterClient(obj);

    // Invocation: calls flow through the stubs, subcontract, kernel, and
    // server-side stubs into the server application.
    assert_eq!(counter.get().unwrap(), 10);
    assert_eq!(counter.add(5).unwrap(), 15);
    assert_eq!(*servant.value.lock(), 15);

    // Reproduction: a shallow copy shares the underlying state.
    let copy = CounterClient(counter.0.copy().unwrap());
    assert_eq!(copy.get().unwrap(), 15);
    copy.add(1).unwrap();
    assert_eq!(counter.get().unwrap(), 16);

    // Death: consuming the objects deletes the identifiers; when the last
    // one dies the kernel notifies the door's target.
    let before = kernel.stats();
    copy.0.consume().unwrap();
    counter.0.consume().unwrap();
    let delta = kernel.stats().since(&before);
    assert_eq!(delta.ids_deleted, 2);
    assert_eq!(delta.unref_notifications, 1);
}

#[test]
fn simplex_lifecycle_and_user_exception() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    let obj = Simplex.export(&server, CounterServant::new(0)).unwrap();
    let counter = CounterClient(ship(obj, &client, &COUNTER_TYPE).unwrap());

    assert_eq!(counter.add(7).unwrap(), 7);
    assert_eq!(counter.get().unwrap(), 7);
    match counter.fail().unwrap_err() {
        SpringError::UnknownUserException(name) => assert_eq!(name, "counter_error"),
        other => panic!("expected user exception, got {other:?}"),
    }
    assert_eq!(counter.echo(b"roundtrip").unwrap(), b"roundtrip");
}

#[test]
fn revocation_blocks_clients() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    let obj = Singleton.export(&server, CounterServant::new(0)).unwrap();
    let client_obj = ship_copy(&obj, &client, &COUNTER_TYPE).unwrap();
    let counter = CounterClient(client_obj);
    assert_eq!(counter.get().unwrap(), 0);

    // The server discards the state without waiting for client consent
    // (§5.2.3).
    Singleton.revoke(&obj).unwrap();
    match counter.get().unwrap_err() {
        SpringError::Door(DoorError::Revoked) => {}
        other => panic!("expected revoked, got {other:?}"),
    }
}

#[test]
fn local_fast_path_avoids_doors_until_marshal() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    let before = kernel.stats();
    let obj = Simplex::export_local(&server, CounterServant::new(3)).unwrap();
    let local = CounterClient(obj);

    // Local invocations touch no doors at all (§5.2.1).
    assert_eq!(local.get().unwrap(), 3);
    assert_eq!(local.add(4).unwrap(), 7);
    let mid = kernel.stats().since(&before);
    assert_eq!(mid.doors_created, 0);
    assert_eq!(mid.door_calls, 0);

    // First transmission creates the cross-domain resources.
    let remote = CounterClient(ship(local.0, &client, &COUNTER_TYPE).unwrap());
    let after = kernel.stats().since(&before);
    assert_eq!(after.doors_created, 1);
    assert_eq!(remote.get().unwrap(), 7);
}

#[test]
fn local_copy_shares_state() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");

    let obj = Simplex::export_local(&server, CounterServant::new(0)).unwrap();
    let a = CounterClient(obj);
    let b = CounterClient(a.0.copy().unwrap());
    a.add(2).unwrap();
    b.add(3).unwrap();
    assert_eq!(a.get().unwrap(), 5);
    assert_eq!(b.get().unwrap(), 5);
}

#[test]
fn drop_consumes_implicitly() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let obj = Singleton.export(&server, CounterServant::new(0)).unwrap();
    let before = kernel.stats();
    drop(obj);
    let delta = kernel.stats().since(&before);
    assert_eq!(delta.ids_deleted, 1);
    assert_eq!(delta.unref_notifications, 1);
    assert_eq!(kernel.live_doors(), 0);
}

#[test]
fn unknown_op_reported() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let obj = Singleton.export(&server, CounterServant::new(0)).unwrap();
    let call = obj.start_call(0xDEAD_BEEF).unwrap();
    let mut reply = obj.invoke(call).unwrap();
    match subcontract::decode_reply_status(&mut reply).unwrap_err() {
        SpringError::UnknownOp(op) => assert_eq!(op, 0xDEAD_BEEF),
        other => panic!("expected unknown op, got {other:?}"),
    }
}

#[test]
fn narrow_and_type_queries() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let obj = Singleton.export(&server, CounterServant::new(0)).unwrap();
    assert!(obj.is_a(&COUNTER_TYPE));
    assert!(obj.is_a(&subcontract::OBJECT_TYPE));
    obj.narrow(&COUNTER_TYPE).unwrap();
    obj.narrow(&subcontract::OBJECT_TYPE).unwrap();
    assert!(matches!(
        obj.narrow(&spring_subcontracts::caching::CACHE_MANAGER_TYPE),
        Err(SpringError::TypeMismatch { .. })
    ));
}

#[test]
fn marshal_copy_leaves_original_usable() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client_a = ctx_on(&kernel, "a");
    let client_b = ctx_on(&kernel, "b");

    let obj = Singleton.export(&server, CounterServant::new(1)).unwrap();
    let a = CounterClient(ship_copy(&obj, &client_a, &COUNTER_TYPE).unwrap());
    let b = CounterClient(ship_copy(&obj, &client_b, &COUNTER_TYPE).unwrap());
    let orig = CounterClient(obj);

    orig.add(1).unwrap();
    a.add(1).unwrap();
    b.add(1).unwrap();
    assert_eq!(orig.get().unwrap(), 4);
}

#[test]
fn concurrent_clients_through_one_door() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let obj = Singleton.export(&server, CounterServant::new(0)).unwrap();

    let mut joins = Vec::new();
    for i in 0..8 {
        let client = ctx_on(&kernel, format!("client-{i}").as_str());
        let mine = ship_copy(&obj, &client, &COUNTER_TYPE).unwrap();
        joins.push(std::thread::spawn(move || {
            let c = CounterClient(mine);
            for _ in 0..100 {
                c.add(1).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    assert_eq!(CounterClient(obj).get().unwrap(), 800);
}

#[test]
fn servant_observes_unreferenced() {
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Observer {
        inner: Arc<CounterServant>,
        unrefs: AtomicU64,
    }
    impl subcontract::Dispatch for Observer {
        fn type_info(&self) -> &'static subcontract::TypeInfo {
            &COUNTER_TYPE
        }
        fn dispatch(
            &self,
            sctx: &subcontract::ServerCtx,
            op: u32,
            args: &mut spring_buf::CommBuffer,
            reply: &mut spring_buf::CommBuffer,
        ) -> subcontract::Result<()> {
            self.inner.dispatch(sctx, op, args, reply)
        }
        fn unreferenced(&self) {
            self.unrefs.fetch_add(1, Ordering::SeqCst);
        }
    }

    for which in ["singleton", "simplex"] {
        let kernel = Kernel::new("t");
        let server = ctx_on(&kernel, "server");
        let client = ctx_on(&kernel, "client");
        let observer = Arc::new(Observer {
            inner: CounterServant::new(0),
            unrefs: AtomicU64::new(0),
        });
        let obj = if which == "singleton" {
            Singleton.export(&server, observer.clone()).unwrap()
        } else {
            Simplex.export(&server, observer.clone()).unwrap()
        };
        let moved = ship(obj, &client, &COUNTER_TYPE).unwrap();
        let copy = moved.copy().unwrap();
        copy.consume().unwrap();
        assert_eq!(observer.unrefs.load(Ordering::SeqCst), 0, "{which}");
        moved.consume().unwrap();
        // The last identifier died; the servant heard about it (§7).
        assert_eq!(observer.unrefs.load(Ordering::SeqCst), 1, "{which}");
    }
}
