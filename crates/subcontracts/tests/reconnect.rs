//! Reconnectable subcontract (§8.3): quiet recovery from server crashes via
//! name re-resolution and periodic retries.

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::{ctx_on, ship, CounterClient, CounterServant, TestNames, COUNTER_TYPE};
use spring_kernel::Kernel;
use spring_subcontracts::{Reconnectable, RetryPolicy};
use subcontract::SpringError;

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        interval: Duration::from_millis(1),
        ..RetryPolicy::default()
    }
}

/// Registers a reconnectable subcontract with a fast test policy in `ctx`.
fn use_fast_reconnectable(ctx: &Arc<subcontract::DomainCtx>) {
    ctx.register_subcontract(Reconnectable::with_policy(fast_policy()));
}

#[test]
fn survives_crash_and_restart() {
    let kernel = Kernel::new("t");
    let names = TestNames::new();

    // Generation one of the server.
    let server1 = ctx_on(&kernel, "server-gen1");
    use_fast_reconnectable(&server1);
    let obj = Reconnectable::export(&server1, CounterServant::new(100), "svc/counter").unwrap();
    names.bind("svc/counter", obj.copy().unwrap());

    let client = ctx_on(&kernel, "client");
    use_fast_reconnectable(&client);
    client.set_resolver(names.resolver_for(&client));
    let c = CounterClient(ship(obj, &client, &COUNTER_TYPE).unwrap());
    assert_eq!(c.get().unwrap(), 100);

    // Crash; restart as a new domain with recovered state; re-bind.
    server1.domain().crash();
    names.unbind("svc/counter");
    let server2 = ctx_on(&kernel, "server-gen2");
    use_fast_reconnectable(&server2);
    let obj2 = Reconnectable::export(&server2, CounterServant::new(100), "svc/counter").unwrap();
    names.bind("svc/counter", obj2);

    // The client's next call quietly reconnects.
    assert_eq!(c.get().unwrap(), 100);
    assert_eq!(c.add(1).unwrap(), 101);
}

#[test]
fn retries_until_rebind_appears() {
    let kernel = Kernel::new("t");
    let names = TestNames::new();

    let server1 = ctx_on(&kernel, "server-gen1");
    use_fast_reconnectable(&server1);
    let obj = Reconnectable::export(&server1, CounterServant::new(5), "svc/x").unwrap();
    names.bind("svc/x", obj.copy().unwrap());

    let client = ctx_on(&kernel, "client");
    use_fast_reconnectable(&client);
    client.set_resolver(names.resolver_for(&client));
    let c = CounterClient(ship(obj, &client, &COUNTER_TYPE).unwrap());
    assert_eq!(c.get().unwrap(), 5);

    server1.domain().crash();
    names.unbind("svc/x");

    // Restart the server from another thread after a few retry intervals.
    let kernel2 = kernel.clone();
    let names2 = names.clone();
    let restarter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(4));
        let server2 = ctx_on(&kernel2, "server-gen2");
        use_fast_reconnectable(&server2);
        let obj2 = Reconnectable::export(&server2, CounterServant::new(5), "svc/x").unwrap();
        names2.bind("svc/x", obj2);
    });

    // This call spans the outage: it must retry periodically and succeed.
    assert_eq!(c.get().unwrap(), 5);
    restarter.join().unwrap();
}

#[test]
fn gives_up_after_retry_budget() {
    let kernel = Kernel::new("t");
    let names = TestNames::new();

    let server = ctx_on(&kernel, "server");
    let policy = RetryPolicy {
        max_attempts: 3,
        interval: Duration::from_millis(1),
        ..RetryPolicy::default()
    };
    server.register_subcontract(Reconnectable::with_policy(policy));
    let obj = Reconnectable::export(&server, CounterServant::new(0), "svc/dead").unwrap();

    let client = ctx_on(&kernel, "client");
    client.register_subcontract(Reconnectable::with_policy(policy));
    client.set_resolver(names.resolver_for(&client));
    let c = CounterClient(ship(obj, &client, &COUNTER_TYPE).unwrap());

    server.domain().crash();
    // Nothing ever re-binds the name.
    match c.get().unwrap_err() {
        SpringError::Exhausted(_) => {}
        other => panic!("expected exhaustion, got {other:?}"),
    }
}

#[test]
fn adopts_door_from_singleton_binding() {
    // A restarted server may bind a plain singleton object under the name;
    // reconnectable adopts its door.
    let kernel = Kernel::new("t");
    let names = TestNames::new();

    let server1 = ctx_on(&kernel, "server-gen1");
    use_fast_reconnectable(&server1);
    let obj = Reconnectable::export(&server1, CounterServant::new(9), "svc/y").unwrap();
    names.bind("svc/y", obj.copy().unwrap());

    let client = ctx_on(&kernel, "client");
    use_fast_reconnectable(&client);
    client.set_resolver(names.resolver_for(&client));
    let c = CounterClient(ship(obj, &client, &COUNTER_TYPE).unwrap());
    assert_eq!(c.get().unwrap(), 9);

    server1.domain().crash();
    let server2 = ctx_on(&kernel, "server-gen2");
    let singleton_obj = subcontract::ServerSubcontract::export(
        &*spring_subcontracts::Singleton::new(),
        &server2,
        CounterServant::new(9),
    )
    .unwrap();
    names.bind("svc/y", singleton_obj);

    assert_eq!(c.add(1).unwrap(), 10);
}

#[test]
fn non_comm_failures_are_not_retried() {
    let kernel = Kernel::new("t");
    let names = TestNames::new();
    let server = ctx_on(&kernel, "server");
    use_fast_reconnectable(&server);
    let obj = Reconnectable::export(&server, CounterServant::new(0), "svc/z").unwrap();

    let client = ctx_on(&kernel, "client");
    use_fast_reconnectable(&client);
    client.set_resolver(names.resolver_for(&client));
    let c = CounterClient(ship(obj, &client, &COUNTER_TYPE).unwrap());

    // Unknown user exception: the call must fail immediately, not retry.
    let start = std::time::Instant::now();
    assert!(c.fail().is_err());
    assert!(start.elapsed() < Duration::from_millis(50));
}
