//! Shmem subcontract (§5.1.4): arguments marshalled directly into shared
//! memory, avoiding the kernel's cross-domain payload copy.

mod common;

use common::{ctx_on, ship, CounterClient, CounterServant, COUNTER_TYPE};
use spring_kernel::Kernel;
use spring_subcontracts::Shmem;

#[test]
fn calls_work_through_shared_memory() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    let obj = Shmem::export(&server, CounterServant::new(10), 4096).unwrap();
    let c = CounterClient(ship(obj, &client, &COUNTER_TYPE).unwrap());
    assert_eq!(c.get().unwrap(), 10);
    assert_eq!(c.add(5).unwrap(), 15);
    assert_eq!(c.echo(b"shared!").unwrap(), b"shared!");
}

#[test]
fn payload_bytes_skip_the_kernel_copy() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    let payload = vec![0xAB; 64 * 1024];

    // Baseline: the same payload through simplex is copied by the kernel.
    let simplex_obj = subcontract::ServerSubcontract::export(
        &*spring_subcontracts::Simplex::new(),
        &server,
        CounterServant::new(0),
    )
    .unwrap();
    let simplex = CounterClient(ship(simplex_obj, &client, &COUNTER_TYPE).unwrap());
    let before = kernel.stats();
    simplex.echo(&payload).unwrap();
    let simplex_copied = kernel.stats().since(&before).bytes_copied;

    let shmem_obj = Shmem::export(&server, CounterServant::new(0), 256 * 1024).unwrap();
    let shm = CounterClient(ship(shmem_obj, &client, &COUNTER_TYPE).unwrap());
    let before = kernel.stats();
    shm.echo(&payload).unwrap();
    let shm_copied = kernel.stats().since(&before).bytes_copied;

    // The shmem request payload crossed without a copy; only the small
    // descriptor and the (echoed) reply bytes were copied. Simplex copies
    // the payload in both directions.
    assert!(simplex_copied > 2 * payload.len() as u64);
    assert!(
        shm_copied <= payload.len() as u64 + 1024,
        "shm {shm_copied} vs simplex {simplex_copied}"
    );
}

#[test]
fn each_client_gets_its_own_region() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let a = ctx_on(&kernel, "a");
    let b = ctx_on(&kernel, "b");

    let obj = Shmem::export(&server, CounterServant::new(0), 1024).unwrap();
    let ca = CounterClient(common::ship_copy(&obj, &a, &COUNTER_TYPE).unwrap());
    let cb = CounterClient(common::ship_copy(&obj, &b, &COUNTER_TYPE).unwrap());

    // Interleaved calls from both clients do not trample each other.
    assert_eq!(ca.add(1).unwrap(), 1);
    assert_eq!(cb.add(2).unwrap(), 3);
    assert_eq!(ca.echo(b"aaa").unwrap(), b"aaa");
    assert_eq!(cb.echo(b"bbb").unwrap(), b"bbb");
}

#[test]
fn consume_destroys_region_and_door() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    let obj = Shmem::export(&server, CounterServant::new(0), 512).unwrap();
    let obj = ship(obj, &client, &COUNTER_TYPE).unwrap();
    let before = kernel.stats();
    obj.consume().unwrap();
    let delta = kernel.stats().since(&before);
    assert_eq!(delta.ids_deleted, 1);
}

#[test]
fn marshal_roundtrip_recreates_region() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let a = ctx_on(&kernel, "a");
    let b = ctx_on(&kernel, "b");

    let obj = Shmem::export(&server, CounterServant::new(1), 2048).unwrap();
    let obj = ship(obj, &a, &COUNTER_TYPE).unwrap();
    let obj = ship(obj, &b, &COUNTER_TYPE).unwrap();
    let c = CounterClient(obj);
    assert_eq!(c.add(1).unwrap(), 2);
}

#[test]
fn large_payload_grows_region() {
    // Marshalling past the advertised region size must still work: the
    // mapping grows and publishes back.
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    let obj = Shmem::export(&server, CounterServant::new(0), 64).unwrap();
    let c = CounterClient(ship(obj, &client, &COUNTER_TYPE).unwrap());
    let big = vec![7u8; 10_000];
    assert_eq!(c.echo(&big).unwrap(), big);
}

#[test]
fn concurrent_calls_on_one_shmem_object_are_rejected_cleanly() {
    // A shmem object's region admits one in-flight call; a concurrent
    // caller gets a clean error, never corruption (documented limitation —
    // use one object per thread, or copy the object).
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    struct Slow;
    impl subcontract::Dispatch for Slow {
        fn type_info(&self) -> &'static subcontract::TypeInfo {
            &COUNTER_TYPE
        }
        fn dispatch(
            &self,
            _sctx: &subcontract::ServerCtx,
            _op: u32,
            _args: &mut spring_buf::CommBuffer,
            reply: &mut spring_buf::CommBuffer,
        ) -> subcontract::Result<()> {
            std::thread::sleep(std::time::Duration::from_millis(20));
            subcontract::encode_ok(reply);
            reply.put_i64(0);
            Ok(())
        }
    }

    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let obj = Shmem::export(&server, std::sync::Arc::new(Slow), 1024).unwrap();
    let obj = std::sync::Arc::new(obj);

    let barrier = std::sync::Arc::new(Barrier::new(2));
    let failures = std::sync::Arc::new(AtomicU64::new(0));
    let mut joins = Vec::new();
    for _ in 0..2 {
        let obj = obj.clone();
        let barrier = barrier.clone();
        let failures = failures.clone();
        joins.push(std::thread::spawn(move || {
            barrier.wait();
            match obj.start_call(common::OP_GET) {
                Ok(call) => {
                    let _ = obj.invoke(call);
                }
                Err(_) => {
                    failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    // At most one loser, and it failed at start_call (the region was busy).
    assert!(failures.load(Ordering::Relaxed) <= 1);
}
