//! Caching subcontract (§8.2): attach-on-unmarshal, local cache hits,
//! write-through invalidation.

mod common;

use common::{ctx_on, ship, CounterClient, CounterServant, TestNames, COUNTER_TYPE, OP_GET};
use spring_kernel::Kernel;
use spring_subcontracts::{CacheManager, Caching};
use subcontract::SpringError;

/// Builds a client context wired to a local cache manager bound as
/// `"cache_manager"`, returning the manager for stats inspection.
fn client_with_manager(
    kernel: &Kernel,
    names: &std::sync::Arc<TestNames>,
) -> (
    std::sync::Arc<subcontract::DomainCtx>,
    std::sync::Arc<CacheManager>,
) {
    let mgr_ctx = ctx_on(kernel, "cache-manager");
    let manager = CacheManager::new(&mgr_ctx, [OP_GET, common::OP_ECHO]);
    names.bind("cache_manager", manager.export().unwrap());

    let client = ctx_on(kernel, "client");
    client.set_resolver(names.resolver_for(&client));
    (client, manager)
}

#[test]
fn unmarshal_attaches_and_reads_hit_the_cache() {
    let kernel = Kernel::new("t");
    let names = TestNames::new();
    let server = ctx_on(&kernel, "server");
    let (client, manager) = client_with_manager(&kernel, &names);

    let obj = Caching::export(&server, CounterServant::new(42), "cache_manager").unwrap();
    let obj = ship(obj, &client, &COUNTER_TYPE).unwrap();
    assert_eq!(manager.stats().attaches(), 1);

    let c = CounterClient(obj);
    // First read misses and fills the cache; the rest hit locally.
    for _ in 0..5 {
        assert_eq!(c.get().unwrap(), 42);
    }
    assert_eq!(manager.stats().misses(), 1);
    assert_eq!(manager.stats().hits(), 4);
}

#[test]
fn writes_forward_and_invalidate() {
    let kernel = Kernel::new("t");
    let names = TestNames::new();
    let server = ctx_on(&kernel, "server");
    let (client, manager) = client_with_manager(&kernel, &names);

    let servant = CounterServant::new(0);
    let obj = Caching::export(&server, servant.clone(), "cache_manager").unwrap();
    let c = CounterClient(ship(obj, &client, &COUNTER_TYPE).unwrap());

    assert_eq!(c.get().unwrap(), 0); // Miss, cached.
    assert_eq!(c.get().unwrap(), 0); // Hit.
    assert_eq!(c.add(5).unwrap(), 5); // Forwarded, invalidates.
    assert_eq!(manager.stats().forwards(), 1);
    assert_eq!(manager.stats().invalidations(), 1);
    // The stale cached read must not resurface.
    assert_eq!(c.get().unwrap(), 5);
    assert_eq!(*servant.value.lock(), 5);
}

#[test]
fn exporting_server_needs_no_cache() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    // No resolver, no manager: the server's own object invokes directly.
    let obj = Caching::export(&server, CounterServant::new(7), "cache_manager").unwrap();
    let c = CounterClient(obj);
    assert_eq!(c.get().unwrap(), 7);
    assert_eq!(c.add(1).unwrap(), 8);
}

#[test]
fn unmarshal_without_resolver_fails_cleanly() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client"); // No resolver configured.

    let obj = Caching::export(&server, CounterServant::new(0), "cache_manager").unwrap();
    match ship(obj, &client, &COUNTER_TYPE) {
        Err(SpringError::Unsupported(_)) => {}
        other => panic!("expected missing-resolver error, got {other:?}"),
    }
}

#[test]
fn unmarshal_with_unknown_manager_fails_cleanly() {
    let kernel = Kernel::new("t");
    let names = TestNames::new();
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");
    client.set_resolver(names.resolver_for(&client));

    let obj = Caching::export(&server, CounterServant::new(0), "nonexistent_manager").unwrap();
    match ship(obj, &client, &COUNTER_TYPE) {
        Err(SpringError::ResolveFailed(name)) => assert_eq!(name, "nonexistent_manager"),
        other => panic!("expected resolve failure, got {other:?}"),
    }
}

#[test]
fn two_clients_get_independent_caches() {
    let kernel = Kernel::new("t");
    let names = TestNames::new();
    let server = ctx_on(&kernel, "server");
    let (client_a, manager) = client_with_manager(&kernel, &names);
    // Second client shares the same machine-local manager.
    let client_b = ctx_on(&kernel, "client-b");
    client_b.set_resolver(names.resolver_for(&client_b));

    let obj = Caching::export(&server, CounterServant::new(1), "cache_manager").unwrap();
    let a = CounterClient(common::ship_copy(&obj, &client_a, &COUNTER_TYPE).unwrap());
    let b = CounterClient(common::ship_copy(&obj, &client_b, &COUNTER_TYPE).unwrap());
    assert_eq!(manager.stats().attaches(), 2);

    assert_eq!(a.get().unwrap(), 1);
    assert_eq!(b.get().unwrap(), 1);
    // Each attachment missed once: the caches are per attachment.
    assert_eq!(manager.stats().misses(), 2);
}

#[test]
fn copied_caching_object_shares_cache_door() {
    let kernel = Kernel::new("t");
    let names = TestNames::new();
    let server = ctx_on(&kernel, "server");
    let (client, manager) = client_with_manager(&kernel, &names);

    let obj = Caching::export(&server, CounterServant::new(3), "cache_manager").unwrap();
    let a = CounterClient(ship(obj, &client, &COUNTER_TYPE).unwrap());
    let b = CounterClient(a.0.copy().unwrap());

    assert_eq!(a.get().unwrap(), 3);
    assert_eq!(b.get().unwrap(), 3);
    // The copy reuses the same attachment: one miss, one hit.
    assert_eq!(manager.stats().attaches(), 1);
    assert_eq!(manager.stats().misses(), 1);
    assert_eq!(manager.stats().hits(), 1);
}
