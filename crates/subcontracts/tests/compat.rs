//! Compatible subcontracts (§6.1) and dynamic discovery (§6.2): receiving an
//! object of an unexpected subcontract, registry re-dispatch, simulated
//! dynamic linking, and the trusted-search-path security rule.

mod common;

use std::sync::Arc;

use common::{ctx_on, ship, CounterClient, CounterServant, COUNTER_TYPE};
use spring_kernel::Kernel;
use spring_subcontracts::{
    register_standard, standard_library, Replicon, RepliconServer, Simplex, Singleton,
};
use subcontract::{DomainCtx, LibraryStore, MapLibraryNames, ServerSubcontract, SpringError};

#[test]
fn simplex_object_received_where_singleton_expected() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    // COUNTER_TYPE's default subcontract is singleton; the sender used
    // simplex. The singleton unmarshal peeks the identifier and re-dispatches.
    let obj = Simplex.export(&server, CounterServant::new(1)).unwrap();
    let obj = ship(obj, &client, &COUNTER_TYPE).unwrap();
    assert_eq!(obj.subcontract().id(), Simplex::ID);
    assert_eq!(CounterClient(obj).get().unwrap(), 1);
}

#[test]
fn replicon_object_received_where_singleton_expected() {
    let kernel = Kernel::new("t");
    let server_ctx = ctx_on(&kernel, "replica");
    let client = ctx_on(&kernel, "client");

    let group = spring_subcontracts::ReplicaGroup::new();
    group
        .add(RepliconServer::new(&server_ctx, CounterServant::new(7)).unwrap())
        .unwrap();
    let obj = group.object_for(&server_ctx).unwrap();
    let obj = ship(obj, &client, &COUNTER_TYPE).unwrap();
    assert_eq!(obj.subcontract().id(), Replicon::ID);
    assert_eq!(CounterClient(obj).get().unwrap(), 7);
}

/// Builds a client domain that only knows singleton — it was "not initially
/// linked with any libraries that understood replicated objects" (§6.2).
fn minimal_client(kernel: &Kernel) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain("old-client"));
    ctx.register_subcontract(Singleton::new());
    ctx.types().register(&COUNTER_TYPE);
    ctx
}

#[test]
fn unknown_subcontract_without_discovery_fails() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = minimal_client(&kernel);

    let obj = Simplex.export(&server, CounterServant::new(0)).unwrap();
    match ship(obj, &client, &COUNTER_TYPE) {
        Err(SpringError::UnknownSubcontract(id)) => assert_eq!(id, Simplex::ID),
        other => panic!("expected unknown subcontract, got {other:?}"),
    }
}

#[test]
fn dynamic_discovery_loads_the_library() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = minimal_client(&kernel);

    // The machine has the standard library installed in a trusted directory,
    // and the naming context maps subcontract ids to library names.
    let store = LibraryStore::new();
    store.install("standard.so", "/usr/lib/subcontracts", standard_library());
    let names = MapLibraryNames::new();
    names.bind(Simplex::ID, "standard.so");
    client.configure_loader(store, vec!["/usr/lib/subcontracts".into()]);
    client.set_library_names(names);

    let obj = Simplex.export(&server, CounterServant::new(3)).unwrap();
    let obj = ship(obj, &client, &COUNTER_TYPE).unwrap();
    assert_eq!(obj.subcontract().id(), Simplex::ID);
    assert_eq!(CounterClient(obj).get().unwrap(), 3);
    // The library's whole contents were registered.
    assert!(client.registry().contains(Replicon::ID));
}

#[test]
fn untrusted_library_location_is_refused() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = minimal_client(&kernel);

    // A malicious client nominated a library outside the trusted path.
    let store = LibraryStore::new();
    store.install("evil.so", "/tmp/downloads", standard_library());
    let names = MapLibraryNames::new();
    names.bind(Simplex::ID, "evil.so");
    client.configure_loader(store, vec!["/usr/lib/subcontracts".into()]);
    client.set_library_names(names);

    let obj = Simplex.export(&server, CounterServant::new(0)).unwrap();
    match ship(obj, &client, &COUNTER_TYPE) {
        Err(SpringError::UntrustedLibrary { library, location }) => {
            assert_eq!(library, "evil.so");
            assert_eq!(location, "/tmp/downloads");
        }
        other => panic!("expected untrusted library, got {other:?}"),
    }
    // Nothing was registered.
    assert!(!client.registry().contains(Simplex::ID));
}

#[test]
fn missing_library_mapping_is_reported() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = minimal_client(&kernel);
    let store = LibraryStore::new();
    client.configure_loader(store, vec!["/usr/lib/subcontracts".into()]);
    client.set_library_names(MapLibraryNames::new());

    let obj = Simplex.export(&server, CounterServant::new(0)).unwrap();
    match ship(obj, &client, &COUNTER_TYPE) {
        Err(SpringError::UnknownLibrary(id)) => assert_eq!(id, Simplex::ID),
        other => panic!("expected unknown library, got {other:?}"),
    }
}

#[test]
fn discovery_happens_once_then_registry_hits() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = minimal_client(&kernel);

    let store = LibraryStore::new();
    store.install("standard.so", "/lib", standard_library());
    let names = MapLibraryNames::new();
    names.bind(Simplex::ID, "standard.so");
    client.configure_loader(store.clone(), vec!["/lib".into()]);
    client.set_library_names(names);

    let obj = Simplex.export(&server, CounterServant::new(1)).unwrap();
    let first = ship(obj, &client, &COUNTER_TYPE).unwrap();

    // Uninstall the library: later unmarshals still work from the registry.
    store.uninstall("standard.so");
    let obj2 = Simplex.export(&server, CounterServant::new(2)).unwrap();
    let second = ship(obj2, &client, &COUNTER_TYPE).unwrap();
    assert_eq!(CounterClient(first).get().unwrap(), 1);
    assert_eq!(CounterClient(second).get().unwrap(), 2);
}

#[test]
fn type_mismatch_on_unmarshal_is_rejected() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    // The client knows cache_manager; a counter is not one.
    let obj = Singleton.export(&server, CounterServant::new(0)).unwrap();
    match ship(
        obj,
        &client,
        &spring_subcontracts::caching::CACHE_MANAGER_TYPE,
    ) {
        Err(SpringError::TypeMismatch { expected, actual }) => {
            assert_eq!(expected, "cache_manager");
            assert_eq!(actual, "counter");
        }
        other => panic!("expected type mismatch, got {other:?}"),
    }
}

#[test]
fn unknown_actual_type_degrades_to_expected() {
    // A receiver that has never heard of the actual type handles the object
    // at its declared type.
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = DomainCtx::new(kernel.create_domain("ignorant"));
    register_standard(&client);
    // Note: COUNTER_TYPE is deliberately *not* registered in the client.

    let obj = Singleton.export(&server, CounterServant::new(5)).unwrap();
    let obj = ship(obj, &client, &subcontract::OBJECT_TYPE).unwrap();
    assert_eq!(obj.type_info().name, "object");
    // The object is still invocable at the wire level.
    assert_eq!(CounterClient(obj).get().unwrap(), 5);
}
