//! Replicon subcontract (§5): failover on communication errors, replica-set
//! piggybacking, and marshalling of the whole door set.

mod common;

use std::sync::Arc;

use common::{ctx_on, ship, CounterClient, COUNTER_TYPE};
use parking_lot::Mutex;
use spring_kernel::Kernel;
use spring_subcontracts::{ReplicaGroup, Replicon, RepliconServer};
use subcontract::{DomainCtx, SpringError, SpringObj};

/// Builds a group of `n` replicas, each in its own domain, sharing a common
/// value through a shared servant state (state synchronization between
/// servers is the application's business, §5; the services crate implements
/// a real write-fanout server).
fn build_group(kernel: &Kernel, n: usize) -> (ReplicaGroup, Vec<Arc<DomainCtx>>, Arc<Mutex<i64>>) {
    let shared = Arc::new(Mutex::new(0i64));
    let group = ReplicaGroup::new();
    let mut ctxs = Vec::new();
    for i in 0..n {
        let ctx = ctx_on(kernel, &format!("replica-{i}"));
        let servant = Arc::new(SharedCounter {
            value: shared.clone(),
        });
        let server = RepliconServer::new(&ctx, servant).unwrap();
        group.add(server).unwrap();
        ctxs.push(ctx);
    }
    (group, ctxs, shared)
}

/// A counter whose state lives in shared storage, standing in for
/// server-side state synchronization.
struct SharedCounter {
    value: Arc<Mutex<i64>>,
}

impl subcontract::Dispatch for SharedCounter {
    fn type_info(&self) -> &'static subcontract::TypeInfo {
        &COUNTER_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &subcontract::ServerCtx,
        op: u32,
        args: &mut spring_buf::CommBuffer,
        reply: &mut spring_buf::CommBuffer,
    ) -> subcontract::Result<()> {
        match op {
            x if x == common::OP_GET => {
                subcontract::encode_ok(reply);
                reply.put_i64(*self.value.lock());
                Ok(())
            }
            x if x == common::OP_ADD => {
                let delta = args.get_i64()?;
                let mut v = self.value.lock();
                *v += delta;
                subcontract::encode_ok(reply);
                reply.put_i64(*v);
                Ok(())
            }
            other => Err(SpringError::UnknownOp(other)),
        }
    }
}

#[test]
fn calls_work_through_any_replica() {
    let kernel = Kernel::new("t");
    let (group, _ctxs, _shared) = build_group(&kernel, 3);
    let client = ctx_on(&kernel, "client");

    let obj = group.object_for(&client).unwrap();
    assert_eq!(Replicon::live_replicas(&obj).unwrap(), 3);
    let c = CounterClient(obj);
    assert_eq!(c.add(5).unwrap(), 5);
    assert_eq!(c.get().unwrap(), 5);
}

#[test]
fn failover_deletes_dead_doors_and_succeeds() {
    let kernel = Kernel::new("t");
    let (group, ctxs, _shared) = build_group(&kernel, 3);
    let client = ctx_on(&kernel, "client");
    let obj = group.object_for(&client).unwrap();

    // Kill the first two replicas; invoke must quietly fail over.
    ctxs[0].domain().crash();
    ctxs[1].domain().crash();

    let c = CounterClient(obj);
    assert_eq!(c.add(1).unwrap(), 1);
    // The dead identifiers were deleted from the target set (§5.1.3).
    assert_eq!(Replicon::live_replicas(&c.0).unwrap(), 1);
}

#[test]
fn all_replicas_dead_is_exhaustion() {
    let kernel = Kernel::new("t");
    let (group, ctxs, _shared) = build_group(&kernel, 2);
    let client = ctx_on(&kernel, "client");
    let obj = group.object_for(&client).unwrap();

    for ctx in &ctxs {
        ctx.domain().crash();
    }
    let c = CounterClient(obj);
    match c.get().unwrap_err() {
        SpringError::Exhausted(_) => {}
        other => panic!("expected exhaustion, got {other:?}"),
    }
    assert_eq!(Replicon::live_replicas(&c.0).unwrap(), 0);
}

#[test]
fn piggybacked_update_restores_replica_set() {
    let kernel = Kernel::new("t");
    let (group, ctxs, shared) = build_group(&kernel, 2);
    let client = ctx_on(&kernel, "client");
    let obj = group.object_for(&client).unwrap();
    let old_epoch = Replicon::epoch(&obj).unwrap();

    // One replica dies; the group notices, removes it, and adds a fresh one.
    ctxs[0].domain().crash();
    group.remove_dead().unwrap();
    let ctx_new = ctx_on(&kernel, "replica-new");
    let servant = Arc::new(SharedCounter { value: shared });
    group
        .add(RepliconServer::new(&ctx_new, servant).unwrap())
        .unwrap();
    assert_eq!(group.len(), 2);

    // The client still has the stale set (one dead + one live door). The
    // next call fails over to the live replica, whose reply piggybacks the
    // new replica set.
    let c = CounterClient(obj);
    assert_eq!(c.add(2).unwrap(), 2);
    assert_eq!(Replicon::live_replicas(&c.0).unwrap(), 2);
    assert!(Replicon::epoch(&c.0).unwrap() > old_epoch);

    // And the adopted set is genuinely usable: kill the survivor of the
    // original pair; the call fails over to the adopted replica.
    ctxs[1].domain().crash();
    assert_eq!(c.add(3).unwrap(), 5);
}

#[test]
fn replicon_object_marshals_all_doors() {
    let kernel = Kernel::new("t");
    let (group, _ctxs, _shared) = build_group(&kernel, 3);
    let a = ctx_on(&kernel, "a");
    let b = ctx_on(&kernel, "b");

    let obj = group.object_for(&a).unwrap();
    let obj = ship(obj, &b, &COUNTER_TYPE).unwrap();
    assert_eq!(Replicon::live_replicas(&obj).unwrap(), 3);
    let c = CounterClient(obj);
    assert_eq!(c.add(4).unwrap(), 4);
}

#[test]
fn copy_duplicates_every_door() {
    let kernel = Kernel::new("t");
    let (group, ctxs, _shared) = build_group(&kernel, 2);
    let client = ctx_on(&kernel, "client");
    let obj = group.object_for(&client).unwrap();

    let copy: SpringObj = obj.copy().unwrap();
    assert_eq!(Replicon::live_replicas(&copy).unwrap(), 2);
    obj.consume().unwrap();

    // The copy survives the original's death and still fails over.
    ctxs[0].domain().crash();
    let c = CounterClient(copy);
    assert_eq!(c.add(9).unwrap(), 9);
}

#[test]
fn non_comm_errors_do_not_trigger_failover() {
    let kernel = Kernel::new("t");
    let (group, _ctxs, _shared) = build_group(&kernel, 3);
    let client = ctx_on(&kernel, "client");
    let obj = group.object_for(&client).unwrap();

    // An unknown op is an application-level failure: no replicas may be
    // dropped because of it.
    let call = obj.start_call(0xBAD0_0BAD).unwrap();
    let mut reply = obj.invoke(call).unwrap();
    assert!(matches!(
        subcontract::decode_reply_status(&mut reply).unwrap_err(),
        SpringError::UnknownOp(_)
    ));
    assert_eq!(Replicon::live_replicas(&obj).unwrap(), 3);
}
