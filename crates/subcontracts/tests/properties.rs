//! Property-based tests over the subcontracts: the replicon availability
//! invariant and marshalling round-trips under random domain hops.

mod common;

use std::sync::Arc;

use common::{ctx_on, ship, CounterClient, CounterServant, COUNTER_TYPE};
use proptest::prelude::*;
use spring_kernel::Kernel;
use spring_subcontracts::{
    ClusterServer, ReplicaGroup, Replicon, RepliconServer, Simplex, Singleton,
};
use subcontract::{DomainCtx, ServerSubcontract, SpringObj};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Replicon invariant: as long as at least one replica is alive, every
    /// invocation succeeds, regardless of which subset (in which order)
    /// crashed.
    #[test]
    fn replicon_survives_any_proper_subset_of_crashes(
        r in 1usize..6,
        crash_seq in proptest::collection::vec(any::<usize>(), 0..5),
    ) {
        let kernel = Kernel::new("prop");
        let group = ReplicaGroup::new();
        let mut ctxs = Vec::new();
        // One servant shared by all replicas stands in for server-side
        // state synchronization (§5).
        let servant = CounterServant::new(0);
        for i in 0..r {
            let ctx = ctx_on(&kernel, &format!("replica-{i}"));
            group.add(RepliconServer::new(&ctx, servant.clone()).unwrap()).unwrap();
            ctxs.push(ctx);
        }
        let client = ctx_on(&kernel, "client");
        let obj = group.object_for(&client).unwrap();
        let c = CounterClient(obj);

        let mut alive: Vec<usize> = (0..r).collect();
        let mut expected = 0i64;
        for pick in crash_seq {
            // Always keep one replica alive.
            if alive.len() <= 1 {
                break;
            }
            let victim = alive.remove(pick % alive.len());
            ctxs[victim].domain().crash();
            expected += 1;
            prop_assert_eq!(c.add(1).unwrap(), expected);
        }
        // Final sanity: the call still works and failover trimmed the set.
        expected += 1;
        prop_assert_eq!(c.add(1).unwrap(), expected);
        prop_assert!(Replicon::live_replicas(&c.0).unwrap() >= 1);
    }

    /// Marshal/unmarshal identity: an object shipped through a random
    /// sequence of domains still reaches its servant, for every single-door
    /// subcontract.
    #[test]
    fn objects_survive_random_domain_hops(
        hops in proptest::collection::vec(0usize..4, 1..8),
        which in 0usize..3,
    ) {
        let kernel = Kernel::new("prop");
        let server = ctx_on(&kernel, "server");
        let domains: Vec<Arc<DomainCtx>> =
            (0..4).map(|i| ctx_on(&kernel, &format!("d{i}"))).collect();

        let servant = CounterServant::new(7);
        let mut obj: SpringObj = match which {
            0 => Singleton.export(&server, servant).unwrap(),
            1 => Simplex.export(&server, servant).unwrap(),
            _ => {
                let cluster = ClusterServer::new(&server).unwrap();
                // Keep the cluster server alive for the whole test.
                Box::leak(Box::new(cluster)).export(servant).unwrap()
            }
        };
        for hop in hops {
            obj = ship(obj, &domains[hop], &COUNTER_TYPE).unwrap();
        }
        prop_assert_eq!(CounterClient(obj).get().unwrap(), 7);
    }

    /// Cluster tag dispatch is bijective: with N objects behind one door,
    /// every invocation in any order reaches exactly its own servant.
    #[test]
    fn cluster_tag_dispatch_is_bijective(
        n in 1usize..24,
        order in proptest::collection::vec(any::<usize>(), 1..64),
    ) {
        let kernel = Kernel::new("prop");
        let server = ctx_on(&kernel, "server");
        let cluster = ClusterServer::new(&server).unwrap();
        let objs: Vec<CounterClient> = (0..n)
            .map(|i| CounterClient(cluster.export(CounterServant::new(i as i64 * 100)).unwrap()))
            .collect();
        prop_assert_eq!(kernel.live_doors(), 1);
        for pick in order {
            let i = pick % n;
            prop_assert_eq!(objs[i].get().unwrap(), i as i64 * 100);
        }
    }

    /// Copies are independent: consuming any subset of copies leaves the
    /// others working.
    #[test]
    fn copies_are_independent(n in 1usize..8, kill in proptest::collection::vec(any::<bool>(), 8)) {
        let kernel = Kernel::new("prop");
        let server = ctx_on(&kernel, "server");
        let obj = Singleton.export(&server, CounterServant::new(1)).unwrap();
        let mut copies = Vec::new();
        for _ in 0..n {
            copies.push(obj.copy().unwrap());
        }
        obj.consume().unwrap();
        let mut survivors = Vec::new();
        for (i, copy) in copies.into_iter().enumerate() {
            if kill[i % kill.len()] {
                copy.consume().unwrap();
            } else {
                survivors.push(copy);
            }
        }
        for s in survivors {
            prop_assert_eq!(CounterClient(s).get().unwrap(), 1);
        }
    }
}
