//! Cluster subcontract (§8.1): one door shared by many objects, tag
//! dispatch, per-object revocation.

mod common;

use common::{ctx_on, ship, CounterClient, CounterServant, COUNTER_TYPE};
use spring_kernel::{DoorError, Kernel};
use spring_subcontracts::ClusterServer;
use subcontract::SpringError;

#[test]
fn many_objects_one_door() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    let before = kernel.stats();
    let cluster = ClusterServer::new(&server).unwrap();

    let mut clients = Vec::new();
    for i in 0..100 {
        let obj = cluster.export(CounterServant::new(i)).unwrap();
        clients.push(CounterClient(ship(obj, &client, &COUNTER_TYPE).unwrap()));
    }
    // The whole cluster cost exactly one kernel door (§8.1).
    let delta = kernel.stats().since(&before);
    assert_eq!(delta.doors_created, 1);
    assert_eq!(cluster.live_objects(), 100);

    // The tag dispatches to the right object.
    for (i, c) in clients.iter().enumerate() {
        assert_eq!(c.get().unwrap(), i as i64);
    }
    clients[7].add(100).unwrap();
    assert_eq!(clients[7].get().unwrap(), 107);
    assert_eq!(clients[8].get().unwrap(), 8);
}

#[test]
fn tag_revocation_is_per_object() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    let cluster = ClusterServer::new(&server).unwrap();
    let a_srv = cluster.export(CounterServant::new(1)).unwrap();
    let b_srv = cluster.export(CounterServant::new(2)).unwrap();

    let a_remote = common::ship_copy(&a_srv, &client, &COUNTER_TYPE).unwrap();
    let b_remote = common::ship_copy(&b_srv, &client, &COUNTER_TYPE).unwrap();

    cluster.revoke_tag(&a_srv).unwrap();
    assert_eq!(cluster.live_objects(), 1);

    let a = CounterClient(a_remote);
    let b = CounterClient(b_remote);
    match a.get().unwrap_err() {
        SpringError::Door(DoorError::Revoked) => {}
        other => panic!("expected revoked, got {other:?}"),
    }
    // The sibling object sharing the door still works.
    assert_eq!(b.get().unwrap(), 2);

    // Revoking twice is an error.
    assert!(cluster.revoke_tag(&a_srv).is_err());
}

#[test]
fn cluster_objects_roundtrip_between_domains() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let a = ctx_on(&kernel, "a");
    let b = ctx_on(&kernel, "b");

    let cluster = ClusterServer::new(&server).unwrap();
    let obj = cluster.export(CounterServant::new(5)).unwrap();

    // Bounce the object through two domains; tag and door survive.
    let obj = ship(obj, &a, &COUNTER_TYPE).unwrap();
    let obj = ship(obj, &b, &COUNTER_TYPE).unwrap();
    let c = CounterClient(obj);
    assert_eq!(c.add(5).unwrap(), 10);
}

#[test]
fn copy_shares_tag_and_state() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let cluster = ClusterServer::new(&server).unwrap();
    let obj = cluster.export(CounterServant::new(0)).unwrap();

    let copy = CounterClient(obj.copy().unwrap());
    let orig = CounterClient(obj);
    orig.add(3).unwrap();
    assert_eq!(copy.get().unwrap(), 3);

    // Consuming one identifier leaves the other live.
    orig.0.consume().unwrap();
    assert_eq!(copy.get().unwrap(), 3);
}
