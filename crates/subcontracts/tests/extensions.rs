//! The §8.4 future-direction subcontracts (priority, txn), built as third
//! parties would: on the public API only, discoverable at run time.

mod common;

use std::sync::Arc;

use common::{ctx_on, ship, ship_copy, CounterClient, COUNTER_TYPE};
use parking_lot::Mutex;
use spring_buf::CommBuffer;
use spring_kernel::Kernel;
use spring_subcontracts::priority::{current_call_priority, Priority};
use spring_subcontracts::txn::{current_txn, Txn, TxnScope};
use spring_subcontracts::{extensions_library, Singleton};
use subcontract::{
    encode_ok, LibraryStore, MapLibraryNames, Result, ServerCtx, ServerSubcontract, SpringError,
};

/// A servant that records the priority and transaction it observed.
#[derive(Default)]
struct Recorder {
    seen: Mutex<Vec<(u32, u64)>>,
}

impl subcontract::Dispatch for Recorder {
    fn type_info(&self) -> &'static subcontract::TypeInfo {
        &COUNTER_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        _args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        if op == common::OP_GET {
            self.seen
                .lock()
                .push((current_call_priority(), current_txn()));
            encode_ok(reply);
            reply.put_i64(self.seen.lock().len() as i64);
            Ok(())
        } else {
            Err(SpringError::UnknownOp(op))
        }
    }
}

fn register_extensions(ctx: &Arc<subcontract::DomainCtx>) {
    ctx.register_subcontract(Priority::new());
    ctx.register_subcontract(Txn::new());
}

#[test]
fn priority_travels_in_the_control_region() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");
    register_extensions(&server);
    register_extensions(&client);

    let recorder = Arc::new(Recorder::default());
    let obj = Priority.export(&server, recorder.clone()).unwrap();
    let obj = ship(obj, &client, &COUNTER_TYPE).unwrap();

    Priority::set_priority(&obj, 7).unwrap();
    CounterClient(obj.copy().unwrap()).get().unwrap();
    Priority::set_priority(&obj, 99).unwrap();
    // The copy kept priority 7; the original now carries 99.
    CounterClient(obj).get().unwrap();

    let seen: Vec<u32> = recorder.seen.lock().iter().map(|(p, _)| *p).collect();
    assert_eq!(seen, vec![7, 99]);
    // Outside a call the thread-local is clear.
    assert_eq!(current_call_priority(), 0);
}

#[test]
fn priority_survives_marshalling() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let a = ctx_on(&kernel, "a");
    let b = ctx_on(&kernel, "b");
    for ctx in [&server, &a, &b] {
        register_extensions(ctx);
    }

    let recorder = Arc::new(Recorder::default());
    let obj = Priority.export(&server, recorder.clone()).unwrap();
    let obj = ship(obj, &a, &COUNTER_TYPE).unwrap();
    Priority::set_priority(&obj, 42).unwrap();
    // The configured priority travels with the marshalled form.
    let obj = ship(obj, &b, &COUNTER_TYPE).unwrap();
    assert_eq!(Priority::priority(&obj).unwrap(), 42);
    CounterClient(obj).get().unwrap();
    assert_eq!(recorder.seen.lock()[0].0, 42);
}

#[test]
fn transactions_scope_per_thread_and_journal_on_the_server() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");
    register_extensions(&server);
    register_extensions(&client);

    let recorder = Arc::new(Recorder::default());
    let (obj, journal) = Txn::export_with_journal(&server, recorder.clone()).unwrap();
    let obj = ship(obj, &client, &COUNTER_TYPE).unwrap();
    let c = CounterClient(obj);

    // Outside a transaction: nothing journaled.
    c.get().unwrap();
    assert!(journal.entries().is_empty());

    {
        let _scope = TxnScope::begin(1001);
        c.get().unwrap();
        c.get().unwrap();
        {
            let _nested = TxnScope::begin(2002);
            c.get().unwrap();
        }
        // Nested scope closed: back to 1001.
        c.get().unwrap();
    }
    c.get().unwrap(); // Scope closed: no transaction again.

    assert_eq!(journal.ops_in(1001).len(), 3);
    assert_eq!(journal.ops_in(2002).len(), 1);
    assert_eq!(journal.entries().len(), 4);
    // Every journaled op was the GET operation.
    assert!(journal
        .entries()
        .iter()
        .all(|(_, op)| *op == common::OP_GET));
    // The servant saw matching transaction ids.
    let txns: Vec<u64> = recorder.seen.lock().iter().map(|(_, t)| *t).collect();
    assert_eq!(txns, vec![0, 1001, 1001, 2002, 1001, 0]);
}

#[test]
fn extensions_load_via_dynamic_discovery() {
    // A program that has never heard of the priority subcontract receives a
    // priority object; §6.2's machinery fetches the extension library.
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    register_extensions(&server);

    let client = subcontract::DomainCtx::new(kernel.create_domain("old-client"));
    client.register_subcontract(Singleton::new());
    client.types().register(&COUNTER_TYPE);
    let store = LibraryStore::new();
    store.install(
        "extensions.so",
        "/usr/lib/subcontracts",
        extensions_library(),
    );
    let names = MapLibraryNames::new();
    names.bind(Priority::ID, "extensions.so");
    client.configure_loader(store, vec!["/usr/lib/subcontracts".into()]);
    client.set_library_names(names);

    let recorder = Arc::new(Recorder::default());
    let obj = Priority.export(&server, recorder).unwrap();
    let obj = ship(obj, &client, &COUNTER_TYPE).unwrap();
    assert_eq!(obj.subcontract().name(), "priority");
    // Loading one library registered both extensions.
    assert!(client.registry().contains(Txn::ID));
    CounterClient(obj).get().unwrap();
}

#[test]
fn priority_copy_and_consume_behave() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "server");
    register_extensions(&server);
    let obj = Priority
        .export(&server, Arc::new(Recorder::default()))
        .unwrap();
    Priority::set_priority(&obj, 5).unwrap();
    let copy = obj.copy().unwrap();
    assert_eq!(Priority::priority(&copy).unwrap(), 5);
    obj.consume().unwrap();
    let _ = ship_copy(&copy, &server, &COUNTER_TYPE); // Still marshal-able.
}
