//! Stream subcontract (§8.4 video direction): loss-tolerant frames and
//! ordinary calls through one object, across a lossy network.

mod common;

use std::sync::Arc;

use common::{ctx_on, CounterClient, CounterServant, COUNTER_TYPE};
use parking_lot::Mutex;
use spring_kernel::Kernel;
use spring_net::{NetConfig, Network};
use spring_subcontracts::stream::{FrameOutcome, Stream};
use subcontract::{ship_object, DomainCtx};

fn stream_ctx(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = ctx_on(kernel, name);
    ctx.register_subcontract(Stream::new());
    ctx
}

#[test]
fn frames_and_calls_share_one_object() {
    let kernel = Kernel::new("t");
    let server = stream_ctx(&kernel, "server");
    let client = stream_ctx(&kernel, "client");

    let frames = Arc::new(Mutex::new(Vec::<(u64, Vec<u8>)>::new()));
    let sink = {
        let frames = frames.clone();
        Arc::new(move |seq: u64, data: &[u8]| frames.lock().push((seq, data.to_vec())))
    };
    let (obj, stats) = Stream::export(&server, CounterServant::new(5), sink).unwrap();
    let obj = common::ship(obj, &client, &COUNTER_TYPE).unwrap();

    // Frames flow through the packet protocol...
    for i in 0..4u8 {
        assert_eq!(
            Stream::send_frame(&obj, &[i; 3]).unwrap(),
            FrameOutcome::Delivered
        );
    }
    // ...while ordinary operations still use the request/reply wire.
    assert_eq!(CounterClient(obj.copy().unwrap()).get().unwrap(), 5);

    let got = frames.lock();
    assert_eq!(got.len(), 4);
    assert_eq!(got[0], (1, vec![0, 0, 0]));
    assert_eq!(got[3], (4, vec![3, 3, 3]));
    assert_eq!(stats.received(), 4);
    assert_eq!(stats.missing(), 0);
}

#[test]
fn lost_frames_are_dropped_not_errors() {
    let net = Network::new(NetConfig {
        drop_prob: 0.4,
        ..Default::default()
    });
    net.reseed(7);
    let a = net.add_node("sender-machine");
    let b = net.add_node("receiver-machine");
    let server = stream_ctx(b.kernel(), "receiver");
    let client = stream_ctx(a.kernel(), "sender");

    let (obj, stats) = Stream::export(
        &server,
        CounterServant::new(0),
        Arc::new(|_: u64, _: &[u8]| {}),
    )
    .unwrap();
    let obj = ship_object(&*net, obj, &client, &COUNTER_TYPE).unwrap();

    let total = 200u64;
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    for i in 0..total {
        match Stream::send_frame(&obj, &i.to_le_bytes()).unwrap() {
            FrameOutcome::Delivered => delivered += 1,
            FrameOutcome::Dropped => dropped += 1,
        }
    }
    // With 40% loss some frames vanished and none errored. The receiver may
    // have seen *more* frames than the sender counts as delivered: the
    // frame's empty acknowledgement can be lost too, which a live stream
    // also just shrugs off.
    assert!(dropped > 0, "expected losses at drop_prob 0.4");
    assert!(delivered > 0);
    assert_eq!(delivered + dropped, total);
    assert!(stats.received() >= delivered);
    assert!(stats.received() < total);
    assert_eq!(stats.highest_seq() - stats.received(), stats.missing());
}

#[test]
fn dead_endpoint_is_an_error_not_a_drop() {
    let kernel = Kernel::new("t");
    let server = stream_ctx(&kernel, "server");
    let client = stream_ctx(&kernel, "client");
    let (obj, _stats) = Stream::export(
        &server,
        CounterServant::new(0),
        Arc::new(|_: u64, _: &[u8]| {}),
    )
    .unwrap();
    let obj = common::ship(obj, &client, &COUNTER_TYPE).unwrap();

    server.domain().crash();
    // A crashed receiver ends the stream; that is not tolerable loss.
    assert!(Stream::send_frame(&obj, b"x").is_err());
}

#[test]
fn sequence_numbering_survives_handoff() {
    let kernel = Kernel::new("t");
    let server = stream_ctx(&kernel, "server");
    let a = stream_ctx(&kernel, "a");
    let b = stream_ctx(&kernel, "b");

    let (obj, stats) = Stream::export(
        &server,
        CounterServant::new(0),
        Arc::new(|_: u64, _: &[u8]| {}),
    )
    .unwrap();
    let obj = common::ship(obj, &a, &COUNTER_TYPE).unwrap();
    Stream::send_frame(&obj, b"one").unwrap();
    Stream::send_frame(&obj, b"two").unwrap();

    // Hand the stream to another domain; numbering continues.
    let obj = common::ship(obj, &b, &COUNTER_TYPE).unwrap();
    Stream::send_frame(&obj, b"three").unwrap();
    assert_eq!(stats.highest_seq(), 3);
    assert_eq!(stats.out_of_order(), 0);
}
