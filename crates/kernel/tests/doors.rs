//! Integration tests for door semantics: capability ownership, transfer,
//! copy, delete, revoke, crash, and unreferenced notification.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spring_kernel::{CallCtx, DoorError, DoorHandler, Kernel, Message};

struct Echo;

impl DoorHandler for Echo {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        Ok(msg)
    }
}

struct CountingTarget {
    calls: AtomicU64,
    unrefs: AtomicU64,
}

impl CountingTarget {
    fn new() -> Arc<Self> {
        Arc::new(CountingTarget {
            calls: AtomicU64::new(0),
            unrefs: AtomicU64::new(0),
        })
    }
}

impl DoorHandler for CountingTarget {
    fn invoke(&self, _ctx: &CallCtx, _msg: Message) -> Result<Message, DoorError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        Ok(Message::new())
    }

    fn unreferenced(&self) {
        self.unrefs.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn basic_call_roundtrip() {
    let kernel = Kernel::new("t");
    let server = kernel.create_domain("server");
    let client = kernel.create_domain("client");
    let door = server.create_door(Arc::new(Echo)).unwrap();
    let id = server.transfer_door(door, &client).unwrap();
    let reply = client.call(id, Message::from_bytes(vec![9, 8, 7])).unwrap();
    assert_eq!(reply.bytes, vec![9, 8, 7]);
}

#[test]
fn identifiers_are_capabilities() {
    let kernel = Kernel::new("t");
    let server = kernel.create_domain("server");
    let thief = kernel.create_domain("thief");
    let door = server.create_door(Arc::new(Echo)).unwrap();
    // The thief never received the identifier; using it must fail.
    assert_eq!(
        thief.call(door, Message::new()).unwrap_err(),
        DoorError::InvalidDoor
    );
    assert_eq!(thief.copy_door(door).unwrap_err(), DoorError::InvalidDoor);
    assert_eq!(thief.delete_door(door).unwrap_err(), DoorError::InvalidDoor);
    // The owner can still use it.
    assert!(server.call(door, Message::new()).is_ok());
}

#[test]
fn transfer_invalidates_senders_handle() {
    let kernel = Kernel::new("t");
    let server = kernel.create_domain("server");
    let client = kernel.create_domain("client");
    let door = server.create_door(Arc::new(Echo)).unwrap();
    let id = server.transfer_door(door, &client).unwrap();
    assert!(!server.door_is_valid(door));
    assert!(client.door_is_valid(id));
    assert_eq!(
        server.call(door, Message::new()).unwrap_err(),
        DoorError::InvalidDoor
    );
}

#[test]
fn copy_yields_independent_identifier() {
    let kernel = Kernel::new("t");
    let server = kernel.create_domain("server");
    let door = server.create_door(Arc::new(Echo)).unwrap();
    let copy = server.copy_door(door).unwrap();
    assert_ne!(door, copy);
    server.delete_door(door).unwrap();
    // The copy is still valid.
    assert!(server.call(copy, Message::new()).is_ok());
}

#[test]
fn message_transfers_identifiers_to_server() {
    let kernel = Kernel::new("t");
    let server = kernel.create_domain("server");
    let client = kernel.create_domain("client");
    let target = CountingTarget::new();

    // Handler asserts the received identifier is owned by the server domain
    // and usable there.
    struct Receiver;
    impl DoorHandler for Receiver {
        fn invoke(&self, ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
            assert_eq!(msg.doors.len(), 1);
            let id = msg.doors[0];
            assert_eq!(id.owner(), ctx.server.id());
            // The identifier works from the server domain.
            ctx.server.call(id, Message::new())?;
            Ok(Message::new())
        }
    }

    let recv_door = server.create_door(Arc::new(Receiver)).unwrap();
    let recv_id = server.transfer_door(recv_door, &client).unwrap();

    let inner = server
        .create_door(target.clone() as Arc<dyn DoorHandler>)
        .unwrap();
    let inner_id = server.transfer_door(inner, &client).unwrap();

    let msg = Message {
        bytes: vec![],
        doors: vec![inner_id],
        ..Message::default()
    };
    client.call(recv_id, msg).unwrap();
    assert_eq!(target.calls.load(Ordering::SeqCst), 1);
    // The client's handle was moved away by the send.
    assert!(!client.door_is_valid(inner_id));
}

#[test]
fn reply_can_carry_identifiers_back() {
    let kernel = Kernel::new("t");
    let server = kernel.create_domain("server");
    let client = kernel.create_domain("client");

    struct Minter;
    impl DoorHandler for Minter {
        fn invoke(&self, ctx: &CallCtx, _msg: Message) -> Result<Message, DoorError> {
            let new_door = ctx.server.create_door(Arc::new(Echo))?;
            Ok(Message {
                bytes: vec![],
                doors: vec![new_door],
                ..Message::default()
            })
        }
    }

    let mint = server.create_door(Arc::new(Minter)).unwrap();
    let mint_id = server.transfer_door(mint, &client).unwrap();
    let reply = client.call(mint_id, Message::new()).unwrap();
    assert_eq!(reply.doors.len(), 1);
    let fresh = reply.doors[0];
    assert_eq!(fresh.owner(), client.id());
    assert!(client.call(fresh, Message::from_bytes(vec![1])).is_ok());
}

#[test]
fn unreferenced_fires_when_last_identifier_dies() {
    let kernel = Kernel::new("t");
    let server = kernel.create_domain("server");
    let client = kernel.create_domain("client");
    let target = CountingTarget::new();
    let door = server
        .create_door(target.clone() as Arc<dyn DoorHandler>)
        .unwrap();
    let copy = server.copy_door(door).unwrap();
    let sent = server.transfer_door(copy, &client).unwrap();

    server.delete_door(door).unwrap();
    assert_eq!(target.unrefs.load(Ordering::SeqCst), 0);
    client.delete_door(sent).unwrap();
    assert_eq!(target.unrefs.load(Ordering::SeqCst), 1);
    // The door is gone entirely.
    assert_eq!(kernel.live_doors(), 0);
}

#[test]
fn revoke_blocks_future_calls_but_not_identifiers() {
    let kernel = Kernel::new("t");
    let server = kernel.create_domain("server");
    let client = kernel.create_domain("client");
    let door = server.create_door(Arc::new(Echo)).unwrap();
    let copy = server.copy_door(door).unwrap();
    let id = server.transfer_door(copy, &client).unwrap();

    assert!(client.call(id, Message::new()).is_ok());
    server.revoke_door(door).unwrap();
    assert_eq!(
        client.call(id, Message::new()).unwrap_err(),
        DoorError::Revoked
    );
    // The identifier itself is still owned; deleting it is fine.
    assert!(client.door_is_valid(id));
    client.delete_door(id).unwrap();
}

#[test]
fn only_server_may_revoke() {
    let kernel = Kernel::new("t");
    let server = kernel.create_domain("server");
    let client = kernel.create_domain("client");
    let door = server.create_door(Arc::new(Echo)).unwrap();
    let id = server.transfer_door(door, &client).unwrap();
    assert_eq!(client.revoke_door(id).unwrap_err(), DoorError::NotPermitted);
}

#[test]
fn crash_revokes_served_doors_and_drops_owned_identifiers() {
    let kernel = Kernel::new("t");
    let server = kernel.create_domain("server");
    let client = kernel.create_domain("client");
    let other = kernel.create_domain("other");

    let target = CountingTarget::new();
    let other_door = other
        .create_door(target.clone() as Arc<dyn DoorHandler>)
        .unwrap();
    let held_by_server = other.transfer_door(other_door, &server).unwrap();
    let _ = held_by_server;

    let door = server.create_door(Arc::new(Echo)).unwrap();
    let id = server.transfer_door(door, &client).unwrap();

    server.crash();
    assert!(!server.is_alive());
    // Calls on the crashed server's doors fail.
    assert_eq!(
        client.call(id, Message::new()).unwrap_err(),
        DoorError::Revoked
    );
    // The identifier the server held on `other`'s door was deleted, firing
    // the unreferenced notification.
    assert_eq!(target.unrefs.load(Ordering::SeqCst), 1);
}

#[test]
fn handler_panic_is_contained() {
    let kernel = Kernel::new("t");
    let server = kernel.create_domain("server");
    let client = kernel.create_domain("client");

    struct Bomb;
    impl DoorHandler for Bomb {
        fn invoke(&self, _ctx: &CallCtx, _msg: Message) -> Result<Message, DoorError> {
            panic!("boom");
        }
    }

    let door = server.create_door(Arc::new(Bomb)).unwrap();
    let id = server.transfer_door(door, &client).unwrap();
    match client.call(id, Message::new()) {
        Err(DoorError::Handler(_)) => {}
        other => panic!("expected handler error, got {other:?}"),
    }
    // The kernel is still healthy.
    assert!(client.is_alive());
}

#[test]
fn bad_identifier_in_message_leaves_sender_intact() {
    let kernel = Kernel::new("t");
    let server = kernel.create_domain("server");
    let client = kernel.create_domain("client");
    let door = server.create_door(Arc::new(Echo)).unwrap();
    let id = server.transfer_door(door, &client).unwrap();

    let good = client.copy_door(id).unwrap();
    let bogus = {
        // A deleted identifier.
        let c = client.copy_door(id).unwrap();
        client.delete_door(c).unwrap();
        c
    };
    let msg = Message {
        bytes: vec![],
        doors: vec![good, bogus],
        ..Message::default()
    };
    assert_eq!(client.call(id, msg).unwrap_err(), DoorError::InvalidDoor);
    // The good identifier was not moved.
    assert!(client.door_is_valid(good));
}

#[test]
fn nested_calls_reenter_the_kernel() {
    let kernel = Kernel::new("t");
    let front = kernel.create_domain("front");
    let back = kernel.create_domain("back");
    let client = kernel.create_domain("client");

    let back_door = back.create_door(Arc::new(Echo)).unwrap();
    let back_id = back.transfer_door(back_door, &front).unwrap();

    struct Forwarder {
        target: spring_kernel::DoorId,
    }
    impl DoorHandler for Forwarder {
        fn invoke(&self, ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
            ctx.server.call(self.target, msg)
        }
    }

    let fwd = front
        .create_door(Arc::new(Forwarder { target: back_id }))
        .unwrap();
    let fwd_id = front.transfer_door(fwd, &client).unwrap();
    let reply = client.call(fwd_id, Message::from_bytes(vec![5])).unwrap();
    assert_eq!(reply.bytes, vec![5]);
}

#[test]
fn stats_track_doors_and_calls() {
    let kernel = Kernel::new("t");
    let before = kernel.stats();
    let server = kernel.create_domain("server");
    let client = kernel.create_domain("client");
    let door = server.create_door(Arc::new(Echo)).unwrap();
    let id = server.transfer_door(door, &client).unwrap();
    client.call(id, Message::from_bytes(vec![0; 100])).unwrap();
    let delta = kernel.stats().since(&before);
    assert_eq!(delta.doors_created, 1);
    assert_eq!(delta.door_calls, 1);
    assert!(delta.bytes_copied >= 100);
    assert!(delta.ids_transferred >= 1);
}

#[test]
fn dead_domain_cannot_operate() {
    let kernel = Kernel::new("t");
    let d = kernel.create_domain("d");
    let door = d.create_door(Arc::new(Echo)).unwrap();
    d.crash();
    assert_eq!(
        d.create_door(Arc::new(Echo)).unwrap_err(),
        DoorError::DomainDead
    );
    assert_eq!(
        d.call(door, Message::new()).unwrap_err(),
        DoorError::DomainDead
    );
    // Crashing twice is a no-op.
    d.crash();
}

#[test]
fn shm_roundtrip_through_kernel() {
    let kernel = Kernel::new("t");
    let region = kernel.create_shm(64);
    let id = region.id();
    let found = kernel.lookup_shm(id).unwrap();
    found.map_mut().unwrap()[0] = 42;
    assert_eq!(region.with(|d| d[0]).unwrap(), 42);
    kernel.destroy_shm(id);
    assert_eq!(kernel.lookup_shm(id).unwrap_err(), DoorError::InvalidShm);
}

#[test]
fn door_tokens_identify_doors() {
    let kernel = Kernel::new("t");
    let server = kernel.create_domain("server");
    let client = kernel.create_domain("client");
    let a = server.create_door(Arc::new(Echo)).unwrap();
    let b = server.create_door(Arc::new(Echo)).unwrap();
    let a2 = server.copy_door(a).unwrap();
    let moved = server.transfer_door(a2, &client).unwrap();

    // Copies and transfers of one door share a token; distinct doors do not.
    let ta = server.door_token(a).unwrap();
    assert_eq!(client.door_token(moved).unwrap(), ta);
    assert_ne!(server.door_token(b).unwrap(), ta);
    // Ownership is still enforced.
    assert!(client.door_token(a).is_err());
}

#[test]
fn closure_handlers_work() {
    let kernel = Kernel::new("t");
    let server = kernel.create_domain("server");
    let door = server
        .create_door(Arc::new(|_ctx: &CallCtx, msg: Message| {
            Ok(Message::from_bytes(
                msg.bytes.iter().rev().copied().collect(),
            ))
        }))
        .unwrap();
    let reply = server
        .call(door, Message::from_bytes(vec![1, 2, 3]))
        .unwrap();
    assert_eq!(reply.bytes, vec![3, 2, 1]);
}
