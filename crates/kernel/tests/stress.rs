//! Concurrency stress: many threads hammering doors, crashes included —
//! the kernel must stay consistent and deadlock-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spring_kernel::{CallCtx, DoorError, DoorHandler, Kernel, Message};

struct Work {
    calls: AtomicU64,
}

impl DoorHandler for Work {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        Ok(msg)
    }
}

#[test]
fn concurrent_callers_and_lifecycle_churn() {
    let kernel = Kernel::new("stress");
    let server = kernel.create_domain("server");
    let work = Arc::new(Work {
        calls: AtomicU64::new(0),
    });
    let door = server.create_door(work.clone() as Arc<_>).unwrap();

    let threads = 8;
    let per_thread = 300;
    let mut joins = Vec::new();
    for t in 0..threads {
        let client = kernel.create_domain(format!("client-{t}"));
        let copy = server.copy_door(door).unwrap();
        let id = server.transfer_door(copy, &client).unwrap();
        joins.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                // Interleave calls with identifier churn.
                let extra = client.copy_door(id).unwrap();
                let reply = client.call(id, Message::from_bytes(vec![i as u8])).unwrap();
                assert_eq!(reply.bytes, vec![i as u8]);
                client.delete_door(extra).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    assert_eq!(work.calls.load(Ordering::Relaxed), threads * per_thread);
}

#[test]
fn distinct_doors_parallel_callers_stay_live() {
    // One kernel, many independent client/server pairs: with the sharded
    // door table these calls should proceed in parallel, and most of all
    // must never deadlock against each other.
    let kernel = Kernel::new("stress");
    let threads = 8;
    let per_thread = 2000u64;
    let work = Arc::new(Work {
        calls: AtomicU64::new(0),
    });

    let mut joins = Vec::new();
    for t in 0..threads {
        let server = kernel.create_domain(format!("server-{t}"));
        let client = kernel.create_domain(format!("client-{t}"));
        let door = server.create_door(work.clone() as Arc<_>).unwrap();
        let id = server.transfer_door(door, &client).unwrap();
        joins.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                let reply = client
                    .call(id, Message::from_bytes(vec![(i % 251) as u8; 32]))
                    .unwrap();
                assert_eq!(reply.bytes[0], (i % 251) as u8);
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    assert_eq!(work.calls.load(Ordering::Relaxed), threads * per_thread);
    assert_eq!(kernel.stats().door_calls, threads * per_thread);
}

#[test]
fn door_carrying_messages_under_concurrency() {
    // Calls that transfer identifiers take two domain-table locks; run many
    // in parallel (including re-entrant same-domain transfers via the reply)
    // to exercise the ordered-acquisition path.
    let kernel = Kernel::new("stress");
    let threads = 8;
    let per_thread = 300;

    let mut joins = Vec::new();
    for t in 0..threads {
        let server = kernel.create_domain(format!("server-{t}"));
        let client = kernel.create_domain(format!("client-{t}"));
        // The handler passes every received identifier straight back.
        let door = server
            .create_door(Arc::new(|_: &CallCtx, m: Message| Ok(m)))
            .unwrap();
        let id = server.transfer_door(door, &client).unwrap();
        joins.push(std::thread::spawn(move || {
            for _ in 0..per_thread {
                // Ship a copy of our own door identifier through the call
                // and get it back (re-issued twice by translation).
                let extra = client.copy_door(id).unwrap();
                let reply = client
                    .call(
                        id,
                        Message {
                            bytes: vec![1, 2, 3],
                            doors: vec![extra],
                            ..Message::default()
                        },
                    )
                    .unwrap();
                assert_eq!(reply.doors.len(), 1);
                client.delete_door(reply.doors[0]).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let stats = kernel.stats();
    assert!(stats.ids_issued + stats.ids_transferred >= stats.ids_deleted);
}

#[test]
fn crash_races_with_callers_without_corruption() {
    let kernel = Kernel::new("stress");
    let mut joins = Vec::new();
    for round in 0..10 {
        let server = kernel.create_domain(format!("server-{round}"));
        let door = server
            .create_door(Arc::new(|_: &CallCtx, m: Message| Ok(m)))
            .unwrap();

        let mut clients = Vec::new();
        for c in 0..4 {
            let client = kernel.create_domain(format!("client-{round}-{c}"));
            let copy = server.copy_door(door).unwrap();
            let id = server.transfer_door(copy, &client).unwrap();
            clients.push((client, id));
        }

        // Callers race a crash; every call must either succeed or fail with
        // a crash-class error.
        for (client, id) in clients {
            joins.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    match client.call(id, Message::new()) {
                        Ok(_) => {}
                        Err(DoorError::Revoked) | Err(DoorError::DomainDead) => break,
                        Err(other) => panic!("unexpected error: {other:?}"),
                    }
                }
            }));
        }
        let crasher = server.clone();
        joins.push(std::thread::spawn(move || {
            std::thread::yield_now();
            crasher.crash();
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    // The kernel's books still balance.
    let stats = kernel.stats();
    assert!(stats.ids_issued + stats.ids_transferred >= stats.ids_deleted);
}
