//! Property-based tests: arbitrary sequences of door operations never panic
//! and preserve the kernel's accounting invariants.

use std::sync::Arc;

use proptest::prelude::*;
use spring_kernel::{CallCtx, Domain, DoorError, DoorHandler, DoorId, Kernel, Message};

struct Echo;

impl DoorHandler for Echo {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        Ok(msg)
    }
}

/// One step of the random workload.
#[derive(Clone, Debug)]
enum Op {
    CreateDoor { domain: usize },
    CopyDoor { pick: usize },
    DeleteDoor { pick: usize },
    TransferDoor { pick: usize, to: usize },
    Call { pick: usize, payload: u8 },
    CallWithDoor { pick: usize, send: usize },
    Revoke { pick: usize },
    Crash { domain: usize },
}

fn op_strategy(domains: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..domains).prop_map(|domain| Op::CreateDoor { domain }),
        any::<usize>().prop_map(|pick| Op::CopyDoor { pick }),
        any::<usize>().prop_map(|pick| Op::DeleteDoor { pick }),
        (any::<usize>(), 0..domains).prop_map(|(pick, to)| Op::TransferDoor { pick, to }),
        (any::<usize>(), any::<u8>()).prop_map(|(pick, payload)| Op::Call { pick, payload }),
        (any::<usize>(), any::<usize>()).prop_map(|(pick, send)| Op::CallWithDoor { pick, send }),
        any::<usize>().prop_map(|pick| Op::Revoke { pick }),
        (0..domains).prop_map(|domain| Op::Crash { domain }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_door_workload_is_sound(
        ops in proptest::collection::vec(op_strategy(4), 1..120),
    ) {
        let kernel = Kernel::new("prop");
        let domains: Vec<Domain> =
            (0..4).map(|i| kernel.create_domain(format!("d{i}"))).collect();
        // Identifiers we believe are live, with their owning domain index.
        let mut held: Vec<(usize, DoorId)> = Vec::new();

        for op in ops {
            match op {
                Op::CreateDoor { domain } => {
                    if let Ok(id) = domains[domain].create_door(Arc::new(Echo)) {
                        held.push((domain, id));
                    }
                }
                Op::CopyDoor { pick } => {
                    if held.is_empty() { continue; }
                    let (owner, id) = held[pick % held.len()];
                    if let Ok(copy) = domains[owner].copy_door(id) {
                        held.push((owner, copy));
                    }
                }
                Op::DeleteDoor { pick } => {
                    if held.is_empty() { continue; }
                    let idx = pick % held.len();
                    let (owner, id) = held[idx];
                    let _ = domains[owner].delete_door(id);
                    held.remove(idx);
                }
                Op::TransferDoor { pick, to } => {
                    if held.is_empty() { continue; }
                    let idx = pick % held.len();
                    let (owner, id) = held[idx];
                    match domains[owner].transfer_door(id, &domains[to]) {
                        Ok(new_id) => { held[idx] = (to, new_id); }
                        Err(_) => { held.remove(idx); }
                    }
                }
                Op::Call { pick, payload } => {
                    if held.is_empty() { continue; }
                    let (owner, id) = held[pick % held.len()];
                    let reply = domains[owner].call(id, Message::from_bytes(vec![payload]));
                    if let Ok(r) = reply {
                        prop_assert_eq!(r.bytes, vec![payload]);
                    }
                }
                Op::CallWithDoor { pick, send } => {
                    if held.len() < 2 { continue; }
                    let target_idx = pick % held.len();
                    let mut send_idx = send % held.len();
                    if send_idx == target_idx {
                        send_idx = (send_idx + 1) % held.len();
                    }
                    let (owner, id) = held[target_idx];
                    let (send_owner, send_id) = held[send_idx];
                    if owner != send_owner { continue; }
                    // The echo handler bounces the identifier back; on
                    // success the caller re-owns a fresh identifier.
                    let msg = Message { bytes: vec![], doors: vec![send_id], ..Message::default() };
                    match domains[owner].call(id, msg) {
                        Ok(reply) => {
                            prop_assert_eq!(reply.doors.len(), 1);
                            held[send_idx] = (owner, reply.doors[0]);
                        }
                        Err(_) => {
                            // Delivery may have failed before or after the
                            // identifier moved; forget it conservatively.
                            held.remove(send_idx);
                        }
                    }
                }
                Op::Revoke { pick } => {
                    if held.is_empty() { continue; }
                    let (owner, id) = held[pick % held.len()];
                    let _ = domains[owner].revoke_door(id);
                }
                Op::Crash { domain } => {
                    domains[domain].crash();
                    held.retain(|(owner, _)| *owner != domain);
                }
            }
        }

        // Accounting: issued - deleted covers at least what we still hold
        // (crashes delete in bulk; never negative).
        let stats = kernel.stats();
        prop_assert!(stats.ids_issued + stats.ids_transferred >= stats.ids_deleted);
        // Whatever we believe we hold is actually valid.
        for (owner, id) in &held {
            prop_assert!(
                domains[*owner].door_is_valid(*id),
                "identifier {:?} lost without the model noticing", id
            );
        }
    }
}
