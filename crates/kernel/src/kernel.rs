//! The simulated nucleus itself.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::domain::{CallCtx, Domain, DoorHandler};
use crate::error::DoorError;
use crate::id::{DomainId, DoorId, NodeId, ShmId};
use crate::message::Message;
use crate::shm::ShmRegion;
use crate::stats::{KernelStats, StatsSnapshot};

static NEXT_NODE: AtomicU64 = AtomicU64::new(1);

/// One machine's nucleus: manages domains, doors, and door identifiers.
///
/// All operations on door identifiers go through the kernel, which validates
/// capability ownership on every call. Handles are cheaply cloneable.
#[derive(Clone)]
pub struct Kernel {
    inner: Arc<Inner>,
}

struct Inner {
    node: NodeId,
    name: String,
    state: Mutex<State>,
    next_domain: AtomicU64,
    next_door: AtomicU64,
    next_slot: AtomicU64,
    next_shm: AtomicU64,
    stats: KernelStats,
}

#[derive(Default)]
struct State {
    domains: HashMap<DomainId, DomainEntry>,
    doors: HashMap<u64, DoorEntry>,
    shm: HashMap<ShmId, ShmRegion>,
}

struct DomainEntry {
    name: String,
    alive: bool,
    /// Door table: slot number -> raw door.
    table: HashMap<u64, u64>,
}

struct DoorEntry {
    server: DomainId,
    handler: Arc<dyn DoorHandler>,
    /// Number of outstanding identifiers across all domains.
    refs: u64,
    revoked: bool,
}

impl Kernel {
    /// Creates a fresh kernel (one simulated machine).
    pub fn new(name: impl Into<String>) -> Self {
        Kernel {
            inner: Arc::new(Inner {
                node: NodeId(NEXT_NODE.fetch_add(1, Ordering::Relaxed)),
                name: name.into(),
                state: Mutex::new(State::default()),
                next_domain: AtomicU64::new(1),
                next_door: AtomicU64::new(1),
                next_slot: AtomicU64::new(1),
                next_shm: AtomicU64::new(1),
                stats: KernelStats::default(),
            }),
        }
    }

    /// This kernel's node identifier (unique within the process).
    pub fn node_id(&self) -> NodeId {
        self.inner.node
    }

    /// The machine name given at creation.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Counter snapshot for benchmarking and tests.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Number of doors currently in existence.
    pub fn live_doors(&self) -> usize {
        self.inner.state.lock().doors.len()
    }

    /// Creates a new domain (a simulated address space).
    pub fn create_domain(&self, name: impl Into<String>) -> Domain {
        let id = DomainId(self.inner.next_domain.fetch_add(1, Ordering::Relaxed));
        let entry = DomainEntry {
            name: name.into(),
            alive: true,
            table: HashMap::new(),
        };
        self.inner.state.lock().domains.insert(id, entry);
        Domain::new(self.clone(), id)
    }

    /// Rebuilds a [`Domain`] handle from an id (infrastructure use).
    pub fn domain_handle(&self, id: DomainId) -> Domain {
        Domain::new(self.clone(), id)
    }

    /// Creates a shared-memory region of `size` bytes.
    pub fn create_shm(&self, size: usize) -> ShmRegion {
        let id = ShmId(self.inner.next_shm.fetch_add(1, Ordering::Relaxed));
        let region = ShmRegion::new(id, size);
        self.inner.state.lock().shm.insert(id, region.clone());
        region
    }

    /// Looks up a shared-memory region by identifier.
    pub fn lookup_shm(&self, id: ShmId) -> Result<ShmRegion, DoorError> {
        self.inner
            .state
            .lock()
            .shm
            .get(&id)
            .cloned()
            .ok_or(DoorError::InvalidShm)
    }

    /// Removes a shared-memory region from the registry.
    pub fn destroy_shm(&self, id: ShmId) {
        self.inner.state.lock().shm.remove(&id);
    }

    pub(crate) fn domain_name(&self, id: DomainId) -> String {
        self.inner
            .state
            .lock()
            .domains
            .get(&id)
            .map(|d| d.name.clone())
            .unwrap_or_default()
    }

    pub(crate) fn domain_alive(&self, id: DomainId) -> bool {
        self.inner
            .state
            .lock()
            .domains
            .get(&id)
            .map(|d| d.alive)
            .unwrap_or(false)
    }

    fn fresh_slot(&self) -> u64 {
        self.inner.next_slot.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn create_door(
        &self,
        domain: DomainId,
        handler: Arc<dyn DoorHandler>,
    ) -> Result<DoorId, DoorError> {
        let raw = self.inner.next_door.fetch_add(1, Ordering::Relaxed);
        let slot = self.fresh_slot();
        let mut state = self.inner.state.lock();
        let entry = state
            .domains
            .get_mut(&domain)
            .ok_or(DoorError::DomainDead)?;
        if !entry.alive {
            return Err(DoorError::DomainDead);
        }
        entry.table.insert(slot, raw);
        state.doors.insert(
            raw,
            DoorEntry {
                server: domain,
                handler,
                refs: 1,
                revoked: false,
            },
        );
        self.inner
            .stats
            .doors_created
            .fetch_add(1, Ordering::Relaxed);
        self.inner.stats.ids_issued.fetch_add(1, Ordering::Relaxed);
        Ok(DoorId {
            owner: domain,
            slot,
        })
    }

    /// Looks up the raw door a live identifier refers to, validating
    /// capability ownership.
    fn resolve(state: &State, domain: DomainId, id: DoorId) -> Result<u64, DoorError> {
        if id.owner != domain {
            return Err(DoorError::InvalidDoor);
        }
        let entry = state.domains.get(&domain).ok_or(DoorError::DomainDead)?;
        if !entry.alive {
            return Err(DoorError::DomainDead);
        }
        entry
            .table
            .get(&id.slot)
            .copied()
            .ok_or(DoorError::InvalidDoor)
    }

    pub(crate) fn copy_door(&self, domain: DomainId, id: DoorId) -> Result<DoorId, DoorError> {
        let slot = self.fresh_slot();
        let mut state = self.inner.state.lock();
        let raw = Self::resolve(&state, domain, id)?;
        state
            .doors
            .get_mut(&raw)
            .ok_or(DoorError::InvalidDoor)?
            .refs += 1;
        state
            .domains
            .get_mut(&domain)
            .expect("validated above")
            .table
            .insert(slot, raw);
        self.inner.stats.ids_issued.fetch_add(1, Ordering::Relaxed);
        Ok(DoorId {
            owner: domain,
            slot,
        })
    }

    pub(crate) fn transfer_door(
        &self,
        from: DomainId,
        id: DoorId,
        to: DomainId,
    ) -> Result<DoorId, DoorError> {
        let slot = self.fresh_slot();
        let mut state = self.inner.state.lock();
        let raw = Self::resolve(&state, from, id)?;
        {
            let target = state.domains.get_mut(&to).ok_or(DoorError::DomainDead)?;
            if !target.alive {
                return Err(DoorError::DomainDead);
            }
            target.table.insert(slot, raw);
        }
        state
            .domains
            .get_mut(&from)
            .expect("validated above")
            .table
            .remove(&id.slot);
        self.inner
            .stats
            .ids_transferred
            .fetch_add(1, Ordering::Relaxed);
        Ok(DoorId { owner: to, slot })
    }

    pub(crate) fn delete_door(&self, domain: DomainId, id: DoorId) -> Result<(), DoorError> {
        let notify = {
            let mut state = self.inner.state.lock();
            let raw = Self::resolve(&state, domain, id)?;
            state
                .domains
                .get_mut(&domain)
                .expect("validated above")
                .table
                .remove(&id.slot);
            self.inner.stats.ids_deleted.fetch_add(1, Ordering::Relaxed);
            Self::drop_ref(&mut state, raw)
        };
        self.notify_unreferenced(notify);
        Ok(())
    }

    /// Decrements a door's identifier count, removing the door when it hits
    /// zero. Returns the handler to notify, if any. Caller must invoke the
    /// notification outside the state lock.
    fn drop_ref(state: &mut State, raw: u64) -> Option<Arc<dyn DoorHandler>> {
        let entry = state.doors.get_mut(&raw)?;
        entry.refs -= 1;
        if entry.refs == 0 {
            let entry = state.doors.remove(&raw).expect("entry exists");
            Some(entry.handler)
        } else {
            None
        }
    }

    fn notify_unreferenced(&self, handler: Option<Arc<dyn DoorHandler>>) {
        if let Some(h) = handler {
            self.inner
                .stats
                .unref_notifications
                .fetch_add(1, Ordering::Relaxed);
            // A handler panic during cleanup must not take down the caller.
            let _ = catch_unwind(AssertUnwindSafe(|| h.unreferenced()));
        }
    }

    pub(crate) fn revoke_door(&self, domain: DomainId, id: DoorId) -> Result<(), DoorError> {
        let mut state = self.inner.state.lock();
        let raw = Self::resolve(&state, domain, id)?;
        let entry = state.doors.get_mut(&raw).ok_or(DoorError::InvalidDoor)?;
        if entry.server != domain {
            return Err(DoorError::NotPermitted);
        }
        entry.revoked = true;
        self.inner.stats.revocations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Resolves an identifier to its kernel-internal door token. Two
    /// identifiers denote the same door iff their tokens are equal.
    ///
    /// This pierces capability opacity, so it is meant for *trusted
    /// infrastructure* only — Spring's network servers, which must recognize
    /// doors they have already exported or proxied when mapping door
    /// identifiers to and from their extended network form (§3.3).
    pub(crate) fn door_token(&self, domain: DomainId, id: DoorId) -> Result<u64, DoorError> {
        let state = self.inner.state.lock();
        Self::resolve(&state, domain, id)
    }

    pub(crate) fn door_is_valid(&self, domain: DomainId, id: DoorId) -> bool {
        let state = self.inner.state.lock();
        Self::resolve(&state, domain, id).is_ok()
    }

    /// Marks a domain dead: doors it serves are revoked and every identifier
    /// it owns is deleted.
    pub(crate) fn crash_domain(&self, id: DomainId) {
        let mut notifications = Vec::new();
        {
            let mut state = self.inner.state.lock();
            let Some(entry) = state.domains.get_mut(&id) else {
                return;
            };
            if !entry.alive {
                return;
            }
            entry.alive = false;
            let owned: Vec<u64> = entry.table.drain().map(|(_, raw)| raw).collect();
            let mut revoked = 0u64;
            for door in state.doors.values_mut() {
                if door.server == id && !door.revoked {
                    door.revoked = true;
                    revoked += 1;
                }
            }
            self.inner
                .stats
                .revocations
                .fetch_add(revoked, Ordering::Relaxed);
            self.inner
                .stats
                .ids_deleted
                .fetch_add(owned.len() as u64, Ordering::Relaxed);
            for raw in owned {
                if let Some(h) = Self::drop_ref(&mut state, raw) {
                    notifications.push(h);
                }
            }
        }
        for h in notifications {
            self.notify_unreferenced(Some(h));
        }
    }

    /// Executes a door call from `caller` on identifier `id`.
    pub(crate) fn call(
        &self,
        caller: DomainId,
        id: DoorId,
        msg: Message,
    ) -> Result<Message, DoorError> {
        // Phase 1: validate, copy the payload, translate identifiers into
        // the serving domain, and pick up the handler — all under the lock.
        let (handler, server) = {
            let state = self.inner.state.lock();
            let raw = Self::resolve(&state, caller, id)?;
            let entry = state.doors.get(&raw).ok_or(DoorError::InvalidDoor)?;
            if entry.revoked {
                return Err(DoorError::Revoked);
            }
            let server = entry.server;
            let handler = Arc::clone(&entry.handler);
            match state.domains.get(&server) {
                Some(d) if d.alive => {}
                _ => return Err(DoorError::Revoked),
            }
            (handler, server)
        };

        self.inner.stats.door_calls.fetch_add(1, Ordering::Relaxed);
        let delivered = self.translate(caller, server, msg)?;

        // Phase 2: run the handler outside the lock, on the caller's thread.
        let ctx = CallCtx {
            caller,
            server: self.domain_handle(server),
        };
        let reply = match catch_unwind(AssertUnwindSafe(|| handler.invoke(&ctx, delivered))) {
            Ok(result) => result?,
            Err(_) => return Err(DoorError::Handler("door handler panicked".into())),
        };

        // Phase 3: translate the reply back to the caller.
        self.translate(server, caller, reply)
    }

    /// Copies a message's payload (the simulated cross-address-space copy)
    /// and transfers its door identifiers from `from` to `to`.
    fn translate(&self, from: DomainId, to: DomainId, msg: Message) -> Result<Message, DoorError> {
        self.inner
            .stats
            .bytes_copied
            .fetch_add(msg.bytes.len() as u64, Ordering::Relaxed);
        // Physical copy: a real kernel copies payload bytes between address
        // spaces; this is the cost shared-memory subcontracts avoid.
        let bytes = msg.bytes.clone();

        let mut state = self.inner.state.lock();
        // Validate every identifier before moving any, so a bad message
        // leaves the sender's table untouched.
        let mut raws = Vec::with_capacity(msg.doors.len());
        for d in &msg.doors {
            raws.push(Self::resolve(&state, from, *d)?);
        }
        if !state.domains.get(&to).map(|d| d.alive).unwrap_or(false) {
            return Err(DoorError::DomainDead);
        }
        let mut doors = Vec::with_capacity(msg.doors.len());
        for (d, raw) in msg.doors.iter().zip(raws) {
            state
                .domains
                .get_mut(&from)
                .expect("validated above")
                .table
                .remove(&d.slot);
            let slot = self.inner.next_slot.fetch_add(1, Ordering::Relaxed);
            state
                .domains
                .get_mut(&to)
                .expect("validated above")
                .table
                .insert(slot, raw);
            doors.push(DoorId { owner: to, slot });
        }
        self.inner
            .stats
            .ids_transferred
            .fetch_add(doors.len() as u64, Ordering::Relaxed);
        Ok(Message { bytes, doors })
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kernel({:?}, {:?})", self.inner.node, self.inner.name)
    }
}
