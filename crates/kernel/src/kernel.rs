//! The simulated nucleus itself.
//!
//! # Locking
//!
//! Kernel state is split so concurrent door calls from different domains do
//! not serialize on one lock (see DESIGN.md, "Concurrency model"):
//!
//! * `domains` — an `RwLock` map from [`DomainId`] to a shared
//!   [`DomainState`]. Calls only ever take the read side; the write side is
//!   taken by `create_domain` alone. Entries are never removed (a crashed
//!   domain stays in the map with `alive == false`), so a fetched
//!   `Arc<DomainState>` stays meaningful forever.
//! * Per-domain door tables — each `DomainState` carries its own `Mutex`
//!   over the slot → raw-door table.
//! * Door shards — door entries (handler, server, refcount, revoked flag)
//!   live in `DOOR_SHARDS` independently locked maps keyed by raw door id.
//!
//! Lock-ordering rules (deadlock freedom):
//!
//! 1. The `domains` map lock is fetch-and-release: it is never held while
//!    acquiring any other lock.
//! 2. A domain table lock is acquired before a door shard lock, never after.
//! 3. When two domain tables are needed (transfer, translate), they are
//!    acquired in ascending [`DomainId`] order.
//! 4. At most one door shard lock is held at a time.
//! 5. No kernel lock is held across handler `invoke` or `unreferenced`
//!    callbacks.
//!
//! A null call (no identifiers in the message) therefore touches exactly one
//! domain-table lock and one shard lock, both uncontended unless another
//! thread is operating on the same domain or the same shard.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard, RwLock};

use crate::domain::{CallCtx, Domain, DoorHandler};
use crate::error::DoorError;
use crate::id::{DomainId, DoorId, NodeId, ShmId};
use crate::message::Message;
use crate::pool;
use crate::shm::ShmRegion;
use crate::stats::{KernelStats, StatsSnapshot};

static NEXT_NODE: AtomicU64 = AtomicU64::new(1);

/// Number of door shards; a power of two so shard selection is a mask.
const DOOR_SHARDS: usize = 16;

/// One machine's nucleus: manages domains, doors, and door identifiers.
///
/// All operations on door identifiers go through the kernel, which validates
/// capability ownership on every call. Handles are cheaply cloneable.
#[derive(Clone)]
pub struct Kernel {
    inner: Arc<Inner>,
}

struct Inner {
    node: NodeId,
    name: String,
    domains: RwLock<HashMap<DomainId, Arc<DomainState>>>,
    door_shards: Box<[Mutex<HashMap<u64, DoorEntry>>; DOOR_SHARDS]>,
    shm: Mutex<HashMap<ShmId, ShmRegion>>,
    next_domain: AtomicU64,
    next_door: AtomicU64,
    next_slot: AtomicU64,
    next_shm: AtomicU64,
    stats: KernelStats,
}

struct DomainState {
    name: String,
    /// Cleared by `crash_domain` under the table lock; readers that need the
    /// flag ordered with table contents check it while holding the lock.
    alive: AtomicBool,
    /// Door table: slot number -> raw door.
    table: Mutex<HashMap<u64, u64>>,
}

struct DoorEntry {
    server: DomainId,
    handler: Arc<dyn DoorHandler>,
    /// Number of outstanding identifiers across all domains.
    refs: u64,
    revoked: bool,
}

impl Inner {
    fn domain(&self, id: DomainId) -> Option<Arc<DomainState>> {
        self.domains.read().get(&id).cloned()
    }

    /// Locks a domain's door table, counting the acquisition as contended
    /// when another thread holds it.
    fn lock_table<'a>(&self, ds: &'a DomainState) -> MutexGuard<'a, HashMap<u64, u64>> {
        match ds.table.try_lock() {
            Some(g) => g,
            None => {
                self.stats.table_lock_waits.fetch_add(1, Ordering::Relaxed);
                ds.table.lock()
            }
        }
    }

    /// Locks the shard holding raw door `raw`, counting contention.
    fn lock_shard(&self, raw: u64) -> MutexGuard<'_, HashMap<u64, DoorEntry>> {
        let shard = &self.door_shards[raw as usize & (DOOR_SHARDS - 1)];
        match shard.try_lock() {
            Some(g) => g,
            None => {
                self.stats.shard_lock_waits.fetch_add(1, Ordering::Relaxed);
                shard.lock()
            }
        }
    }
}

/// Two domain door tables locked in ascending `DomainId` order, degenerating
/// to a single guard when source and destination are the same domain.
enum Tables<'a> {
    Same(MutexGuard<'a, HashMap<u64, u64>>),
    Two {
        from: MutexGuard<'a, HashMap<u64, u64>>,
        to: MutexGuard<'a, HashMap<u64, u64>>,
    },
}

impl<'a> Tables<'a> {
    fn lock(
        inner: &Inner,
        from: (&'a DomainState, DomainId),
        to: (&'a DomainState, DomainId),
    ) -> Tables<'a> {
        if from.1 == to.1 {
            Tables::Same(inner.lock_table(from.0))
        } else if from.1 < to.1 {
            let f = inner.lock_table(from.0);
            let t = inner.lock_table(to.0);
            Tables::Two { from: f, to: t }
        } else {
            let t = inner.lock_table(to.0);
            let f = inner.lock_table(from.0);
            Tables::Two { from: f, to: t }
        }
    }

    fn src_tab(&mut self) -> &mut HashMap<u64, u64> {
        match self {
            Tables::Same(g) => g,
            Tables::Two { from, .. } => from,
        }
    }

    fn dst_tab(&mut self) -> &mut HashMap<u64, u64> {
        match self {
            Tables::Same(g) => g,
            Tables::Two { to, .. } => to,
        }
    }
}

impl Kernel {
    /// Creates a fresh kernel (one simulated machine).
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_raw_node(name, NEXT_NODE.fetch_add(1, Ordering::Relaxed))
    }

    /// Creates a kernel with an explicit node identifier.
    ///
    /// Node identifiers are process-local counters, so two kernels in two
    /// *different OS processes* would both claim node 1 — and a socket
    /// transport connecting them could no longer tell "coming home" doors
    /// from foreign ones. Processes that talk to each other over real
    /// sockets assign their kernels distinct ids up front (the bench
    /// harness passes them on the command line). The process-local counter
    /// is bumped past the given id, so later `Kernel::new` calls in the
    /// same process never collide with it.
    pub fn with_node_id(name: impl Into<String>, node: NodeId) -> Self {
        NEXT_NODE.fetch_max(node.raw() + 1, Ordering::Relaxed);
        Self::with_raw_node(name, node.raw())
    }

    fn with_raw_node(name: impl Into<String>, raw: u64) -> Self {
        Kernel {
            inner: Arc::new(Inner {
                node: NodeId(raw),
                name: name.into(),
                domains: RwLock::new(HashMap::new()),
                door_shards: Box::new(std::array::from_fn(|_| Mutex::new(HashMap::new()))),
                shm: Mutex::new(HashMap::new()),
                next_domain: AtomicU64::new(1),
                next_door: AtomicU64::new(1),
                next_slot: AtomicU64::new(1),
                next_shm: AtomicU64::new(1),
                stats: KernelStats::default(),
            }),
        }
    }

    /// This kernel's node identifier (unique within the process).
    pub fn node_id(&self) -> NodeId {
        self.inner.node
    }

    /// The machine name given at creation.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Counter snapshot for benchmarking and tests.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Number of doors currently in existence.
    pub fn live_doors(&self) -> usize {
        self.inner.door_shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Creates a new domain (a simulated address space).
    pub fn create_domain(&self, name: impl Into<String>) -> Domain {
        let id = DomainId(self.inner.next_domain.fetch_add(1, Ordering::Relaxed));
        let state = Arc::new(DomainState {
            name: name.into(),
            alive: AtomicBool::new(true),
            table: Mutex::new(HashMap::new()),
        });
        self.inner.domains.write().insert(id, state);
        Domain::new(self.clone(), id)
    }

    /// Rebuilds a [`Domain`] handle from an id (infrastructure use).
    pub fn domain_handle(&self, id: DomainId) -> Domain {
        Domain::new(self.clone(), id)
    }

    /// Creates a shared-memory region of `size` bytes.
    pub fn create_shm(&self, size: usize) -> ShmRegion {
        let id = ShmId(self.inner.next_shm.fetch_add(1, Ordering::Relaxed));
        let region = ShmRegion::new(id, size);
        self.inner.shm.lock().insert(id, region.clone());
        region
    }

    /// Looks up a shared-memory region by identifier.
    pub fn lookup_shm(&self, id: ShmId) -> Result<ShmRegion, DoorError> {
        self.inner
            .shm
            .lock()
            .get(&id)
            .cloned()
            .ok_or(DoorError::InvalidShm)
    }

    /// Removes a shared-memory region from the registry.
    pub fn destroy_shm(&self, id: ShmId) {
        self.inner.shm.lock().remove(&id);
    }

    pub(crate) fn domain_name(&self, id: DomainId) -> String {
        self.inner
            .domain(id)
            .map(|d| d.name.clone())
            .unwrap_or_default()
    }

    pub(crate) fn domain_alive(&self, id: DomainId) -> bool {
        self.inner
            .domain(id)
            .map(|d| d.alive.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    fn fresh_slot(&self) -> u64 {
        self.inner.next_slot.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up the raw door a live identifier refers to, validating
    /// capability ownership. Returns the domain state alongside so callers
    /// can reuse it without re-reading the domains map.
    fn resolve(&self, domain: DomainId, id: DoorId) -> Result<(Arc<DomainState>, u64), DoorError> {
        if id.owner != domain {
            return Err(DoorError::InvalidDoor);
        }
        let ds = self.inner.domain(domain).ok_or(DoorError::DomainDead)?;
        let raw = {
            let table = self.inner.lock_table(&ds);
            if !ds.alive.load(Ordering::Relaxed) {
                return Err(DoorError::DomainDead);
            }
            table.get(&id.slot).copied().ok_or(DoorError::InvalidDoor)?
        };
        Ok((ds, raw))
    }

    pub(crate) fn create_door(
        &self,
        domain: DomainId,
        handler: Arc<dyn DoorHandler>,
    ) -> Result<DoorId, DoorError> {
        let raw = self.inner.next_door.fetch_add(1, Ordering::Relaxed);
        let slot = self.fresh_slot();
        let ds = self.inner.domain(domain).ok_or(DoorError::DomainDead)?;
        {
            // Hold the table lock across the shard insert so a concurrent
            // crash_domain either sees the slot (and reaps the door) or
            // fails this create with DomainDead — never a leaked door.
            let mut table = self.inner.lock_table(&ds);
            if !ds.alive.load(Ordering::Relaxed) {
                return Err(DoorError::DomainDead);
            }
            table.insert(slot, raw);
            self.inner.lock_shard(raw).insert(
                raw,
                DoorEntry {
                    server: domain,
                    handler,
                    refs: 1,
                    revoked: false,
                },
            );
        }
        self.inner
            .stats
            .doors_created
            .fetch_add(1, Ordering::Relaxed);
        self.inner.stats.ids_issued.fetch_add(1, Ordering::Relaxed);
        Ok(DoorId {
            owner: domain,
            slot,
        })
    }

    pub(crate) fn copy_door(&self, domain: DomainId, id: DoorId) -> Result<DoorId, DoorError> {
        if id.owner != domain {
            return Err(DoorError::InvalidDoor);
        }
        let slot = self.fresh_slot();
        let ds = self.inner.domain(domain).ok_or(DoorError::DomainDead)?;
        {
            // The table lock pins our reference: while an entry for `raw`
            // exists in this table, refs >= 1 and the door cannot vanish.
            let mut table = self.inner.lock_table(&ds);
            if !ds.alive.load(Ordering::Relaxed) {
                return Err(DoorError::DomainDead);
            }
            let raw = *table.get(&id.slot).ok_or(DoorError::InvalidDoor)?;
            self.inner
                .lock_shard(raw)
                .get_mut(&raw)
                .ok_or(DoorError::InvalidDoor)?
                .refs += 1;
            table.insert(slot, raw);
        }
        self.inner.stats.ids_issued.fetch_add(1, Ordering::Relaxed);
        Ok(DoorId {
            owner: domain,
            slot,
        })
    }

    pub(crate) fn transfer_door(
        &self,
        from: DomainId,
        id: DoorId,
        to: DomainId,
    ) -> Result<DoorId, DoorError> {
        if id.owner != from {
            return Err(DoorError::InvalidDoor);
        }
        let slot = self.fresh_slot();
        let from_ds = self.inner.domain(from).ok_or(DoorError::DomainDead)?;
        let to_ds = self.inner.domain(to).ok_or(DoorError::DomainDead)?;
        {
            let mut tables = Tables::lock(&self.inner, (&from_ds, from), (&to_ds, to));
            if !from_ds.alive.load(Ordering::Relaxed) {
                return Err(DoorError::DomainDead);
            }
            let raw = *tables
                .src_tab()
                .get(&id.slot)
                .ok_or(DoorError::InvalidDoor)?;
            if !to_ds.alive.load(Ordering::Relaxed) {
                return Err(DoorError::DomainDead);
            }
            tables.dst_tab().insert(slot, raw);
            tables.src_tab().remove(&id.slot);
        }
        self.inner
            .stats
            .ids_transferred
            .fetch_add(1, Ordering::Relaxed);
        Ok(DoorId { owner: to, slot })
    }

    pub(crate) fn delete_door(&self, domain: DomainId, id: DoorId) -> Result<(), DoorError> {
        let (ds, _) = self.resolve(domain, id)?;
        let raw = {
            let mut table = self.inner.lock_table(&ds);
            // Re-check under the lock: the slot may have been consumed by a
            // concurrent transfer or crash since resolve released it.
            match table.remove(&id.slot) {
                Some(raw) => raw,
                None => return Err(DoorError::InvalidDoor),
            }
        };
        self.inner.stats.ids_deleted.fetch_add(1, Ordering::Relaxed);
        // The removed table entry was our reference; dropping it cannot race
        // with anyone else dropping the same reference.
        let notify = self.drop_ref(raw);
        self.notify_unreferenced(notify);
        Ok(())
    }

    /// Decrements a door's identifier count, removing the door when it hits
    /// zero. Returns the handler to notify, if any. Caller must invoke the
    /// notification outside all kernel locks.
    fn drop_ref(&self, raw: u64) -> Option<Arc<dyn DoorHandler>> {
        let mut shard = self.inner.lock_shard(raw);
        let entry = shard.get_mut(&raw)?;
        entry.refs -= 1;
        if entry.refs == 0 {
            let entry = shard.remove(&raw).expect("entry exists");
            Some(entry.handler)
        } else {
            None
        }
    }

    fn notify_unreferenced(&self, handler: Option<Arc<dyn DoorHandler>>) {
        if let Some(h) = handler {
            self.inner
                .stats
                .unref_notifications
                .fetch_add(1, Ordering::Relaxed);
            // A handler panic during cleanup must not take down the caller.
            let _ = catch_unwind(AssertUnwindSafe(|| h.unreferenced()));
        }
    }

    pub(crate) fn revoke_door(&self, domain: DomainId, id: DoorId) -> Result<(), DoorError> {
        let (_, raw) = self.resolve(domain, id)?;
        {
            let mut shard = self.inner.lock_shard(raw);
            let entry = shard.get_mut(&raw).ok_or(DoorError::InvalidDoor)?;
            if entry.server != domain {
                return Err(DoorError::NotPermitted);
            }
            entry.revoked = true;
        }
        self.inner.stats.revocations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Resolves an identifier to its kernel-internal door token. Two
    /// identifiers denote the same door iff their tokens are equal.
    ///
    /// This pierces capability opacity, so it is meant for *trusted
    /// infrastructure* only — Spring's network servers, which must recognize
    /// doors they have already exported or proxied when mapping door
    /// identifiers to and from their extended network form (§3.3).
    pub(crate) fn door_token(&self, domain: DomainId, id: DoorId) -> Result<u64, DoorError> {
        self.resolve(domain, id).map(|(_, raw)| raw)
    }

    pub(crate) fn door_is_valid(&self, domain: DomainId, id: DoorId) -> bool {
        self.resolve(domain, id).is_ok()
    }

    /// Marks a domain dead: doors it serves are revoked and every identifier
    /// it owns is deleted.
    pub(crate) fn crash_domain(&self, id: DomainId) {
        let Some(ds) = self.inner.domain(id) else {
            return;
        };
        let owned: Vec<u64> = {
            let mut table = self.inner.lock_table(&ds);
            // The alive flag flips under the table lock, so concurrent
            // create/copy/transfer into this domain either completed (their
            // slots are drained here) or will observe alive == false.
            if !ds.alive.swap(false, Ordering::Relaxed) {
                return;
            }
            table.drain().map(|(_, raw)| raw).collect()
        };

        // Revoke every door this domain serves, one shard at a time.
        let mut revoked = 0u64;
        for shard in self.inner.door_shards.iter() {
            for door in shard.lock().values_mut() {
                if door.server == id && !door.revoked {
                    door.revoked = true;
                    revoked += 1;
                }
            }
        }
        self.inner
            .stats
            .revocations
            .fetch_add(revoked, Ordering::Relaxed);
        self.inner
            .stats
            .ids_deleted
            .fetch_add(owned.len() as u64, Ordering::Relaxed);

        let mut notifications = Vec::new();
        for raw in owned {
            if let Some(h) = self.drop_ref(raw) {
                notifications.push(h);
            }
        }
        for h in notifications {
            self.notify_unreferenced(Some(h));
        }
    }

    /// Executes a door call from `caller` on identifier `id`.
    pub(crate) fn call(
        &self,
        caller: DomainId,
        id: DoorId,
        msg: Message,
    ) -> Result<Message, DoorError> {
        // Phase 1: validate the identifier and pick up the handler. One
        // table lock, one shard lock, both released before the handler runs.
        let (caller_ds, raw) = self.resolve(caller, id)?;
        let (handler, server) = {
            let shard = self.inner.lock_shard(raw);
            // The entry can be gone if the caller domain crashed between
            // resolve and here (draining dropped the last reference); the
            // door is no longer reachable, which callers see as revocation.
            let entry = shard.get(&raw).ok_or(DoorError::Revoked)?;
            if entry.revoked {
                return Err(DoorError::Revoked);
            }
            (Arc::clone(&entry.handler), entry.server)
        };
        let server_ds = self.inner.domain(server).ok_or(DoorError::Revoked)?;
        if !server_ds.alive.load(Ordering::Relaxed) {
            return Err(DoorError::Revoked);
        }

        self.inner.stats.door_calls.fetch_add(1, Ordering::Relaxed);

        // The traced variant lives in a cold out-of-line function so the
        // default path pays exactly one relaxed load for tracing — no span
        // guard on the stack, no extra branches in the hot body.
        if spring_trace::enabled() {
            return self.call_traced(&caller_ds, caller, &server_ds, server, raw, handler, msg);
        }
        self.call_body(&caller_ds, caller, &server_ds, server, handler, msg)
    }

    /// Phases 2 and 3 of a door call: deliver the message, run the handler
    /// outside all locks on the caller's thread, translate the reply back.
    #[inline(always)]
    fn call_body(
        &self,
        caller_ds: &Arc<DomainState>,
        caller: DomainId,
        server_ds: &Arc<DomainState>,
        server: DomainId,
        handler: Arc<dyn DoorHandler>,
        msg: Message,
    ) -> Result<Message, DoorError> {
        let delivered = self.translate(caller_ds, caller, server_ds, server, msg)?;
        let ctx = CallCtx {
            caller,
            server: self.domain_handle(server),
        };
        let reply = match catch_unwind(AssertUnwindSafe(|| handler.invoke(&ctx, delivered))) {
            Ok(result) => result?,
            Err(_) => return Err(DoorError::Handler("door handler panicked".into())),
        };
        self.translate(server_ds, server, caller_ds, caller, reply)
    }

    /// A door call with tracing enabled: one "door_call" span per call,
    /// keyed by the raw door token so per-door latency histograms
    /// accumulate. The piggybacked context on the message wins over the
    /// thread-local current span — a context that crossed a serialization
    /// boundary (the simulated network) reattaches here; within one machine
    /// the two agree because door calls shuttle the caller's thread.
    #[cold]
    #[allow(clippy::too_many_arguments)]
    fn call_traced(
        &self,
        caller_ds: &Arc<DomainState>,
        caller: DomainId,
        server_ds: &Arc<DomainState>,
        server: DomainId,
        raw: u64,
        handler: Arc<dyn DoorHandler>,
        mut msg: Message,
    ) -> Result<Message, DoorError> {
        let parent = if msg.trace.is_some() {
            msg.trace
        } else {
            spring_trace::current()
        };
        let scope = (self.inner.node.0 << 32) | server.0;
        let mut span = spring_trace::span_child_of("door_call", parent, scope, raw);
        msg.trace = span.ctx();

        let mut result = self.call_body(caller_ds, caller, server_ds, server, handler, msg);
        match &mut result {
            Err(_) => span.fail(),
            // Stamp the reply so whoever forwards it (the network server's
            // reply hop) keeps the trace connected; a handler that already
            // set a context keeps its own.
            Ok(reply) => {
                if reply.trace.is_none() {
                    reply.trace = span.ctx();
                }
            }
        }
        result
    }

    /// Copies a message's payload (the simulated cross-address-space copy)
    /// and transfers its door identifiers from `from` to `to`. Same-domain
    /// (D2) deliveries skip the copy: both sides share one address space, so
    /// the payload moves by reference.
    fn translate(
        &self,
        from_ds: &Arc<DomainState>,
        from: DomainId,
        to_ds: &Arc<DomainState>,
        to: DomainId,
        msg: Message,
    ) -> Result<Message, DoorError> {
        let Message {
            bytes: src,
            doors: sent,
            trace,
            call,
        } = msg;
        let bytes = if from == to {
            // D2: caller and server live in the same domain, so "crossing"
            // the boundary moves no bytes — the ownership transfer of the
            // backing is the delivery. Door identifiers still go through
            // slot translation below so capability accounting stays exact.
            self.inner
                .stats
                .local_deliveries
                .fetch_add(1, Ordering::Relaxed);
            src
        } else if src.is_empty() {
            // Copying nothing: an empty Vec never allocates, so the pool
            // would only add counter noise here.
            Vec::new()
        } else {
            // Physical copy: a real kernel copies payload bytes between
            // address spaces; this is the cost shared-memory subcontracts
            // avoid. The copy target comes from the buffer pool and the
            // consumed source backing goes back to it, so steady-state calls
            // do not allocate.
            self.inner
                .stats
                .bytes_copied
                .fetch_add(src.len() as u64, Ordering::Relaxed);
            let mut bytes = pool::take(src.len());
            bytes.extend_from_slice(&src);
            pool::give(src);
            bytes
        };

        if sent.is_empty() {
            // Fast path: no identifiers to move, no table locks needed.
            if !to_ds.alive.load(Ordering::Relaxed) {
                return Err(DoorError::DomainDead);
            }
            return Ok(Message {
                bytes,
                doors: Vec::new(),
                trace,
                call,
            });
        }

        let mut doors = Vec::with_capacity(sent.len());
        {
            let mut tables = Tables::lock(&self.inner, (from_ds, from), (to_ds, to));
            // Validate every identifier before moving any, so a bad message
            // leaves the sender's table untouched.
            if !from_ds.alive.load(Ordering::Relaxed) {
                return Err(DoorError::DomainDead);
            }
            let mut raws = Vec::with_capacity(sent.len());
            for d in &sent {
                if d.owner != from {
                    return Err(DoorError::InvalidDoor);
                }
                raws.push(
                    *tables
                        .src_tab()
                        .get(&d.slot)
                        .ok_or(DoorError::InvalidDoor)?,
                );
            }
            if !to_ds.alive.load(Ordering::Relaxed) {
                return Err(DoorError::DomainDead);
            }
            for (d, raw) in sent.iter().zip(raws) {
                tables.src_tab().remove(&d.slot);
                let slot = self.inner.next_slot.fetch_add(1, Ordering::Relaxed);
                tables.dst_tab().insert(slot, raw);
                doors.push(DoorId { owner: to, slot });
            }
        }
        self.inner
            .stats
            .ids_transferred
            .fetch_add(doors.len() as u64, Ordering::Relaxed);
        Ok(Message {
            bytes,
            doors,
            trace,
            call,
        })
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kernel({:?}, {:?})", self.inner.node, self.inner.name)
    }
}
