//! Thread-local pool of heap buffer backings for the door-call fast path.
//!
//! Every door call copies its payload across the simulated address-space
//! boundary (the paper's mandatory cross-domain copy). Without pooling, each
//! call allocates a fresh `Vec<u8>` for the copy and frees the source, so a
//! steady stream of calls churns the allocator. The pool keeps a small
//! per-thread free list of byte vectors: the kernel's translate step takes
//! its copy target from the pool and donates the consumed source backing
//! back, and `spring-buf`'s `CommBuffer` does the same for marshalling
//! buffers. In steady state a null call performs zero payload allocations.
//!
//! The free list is thread-local, so `take`/`give` never contend on a lock.
//!
//! # Counter scope (footgun)
//!
//! Hit/miss counters are **process-wide** atomics, not per-kernel:
//! `KernelStats::snapshot` surfaces them, but every kernel in the process
//! reports the same pool numbers, and any test or benchmark running
//! concurrently in the same process moves them. Code asserting on pool
//! behaviour must either diff two snapshots taken on the same thread with
//! nothing else running (what the benchmark harness does), or call
//! [`reset_counters`] first and accept that it zeroes the counts for every
//! observer at once.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Minimum address alignment of every pooled backing's payload region.
///
/// Flat wire frames (`spring_buf::flat`) start at 8-byte-aligned offsets
/// within a buffer; keeping the backing itself 8-byte aligned means the
/// frame start is 8-byte aligned in memory too, so whole-frame casts are
/// sound by construction. Rust's global allocator returns ≥ 8-byte-aligned
/// blocks for all practical sizes on 64-bit targets; [`take`] verifies the
/// invariant and [`give`] refuses to retain a backing that violates it.
pub const PAYLOAD_ALIGN: usize = 8;

/// Maximum number of backings retained per thread.
const MAX_POOLED: usize = 32;

/// Backings larger than this are dropped rather than retained, so one huge
/// payload does not pin a megabyte per thread forever.
const MAX_RETAINED_CAPACITY: usize = 1 << 20;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static FREE: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// True when a backing satisfies [`PAYLOAD_ALIGN`]. Capacity-0 vectors hold
/// no storage (their pointer is a dangling sentinel), so they are vacuously
/// aligned.
fn is_aligned(v: &Vec<u8>) -> bool {
    v.capacity() == 0 || (v.as_ptr() as usize).is_multiple_of(PAYLOAD_ALIGN)
}

/// Allocates a fresh backing with [`PAYLOAD_ALIGN`]ed storage. The global
/// allocator already aligns to at least 8 on every supported target; the
/// retry loop turns that practical fact into a checked guarantee without
/// resorting to a custom allocator.
fn alloc_aligned(min_capacity: usize) -> Vec<u8> {
    let mut parked = Vec::new();
    for _ in 0..8 {
        let v = Vec::with_capacity(min_capacity);
        if is_aligned(&v) {
            return v;
        }
        // Keep the misaligned block alive so the next attempt gets a
        // different address.
        parked.push(v);
    }
    debug_assert!(false, "allocator never produced an 8-byte-aligned block");
    parked.pop().unwrap()
}

/// Takes an empty byte vector with at least `min_capacity` spare capacity,
/// reusing a pooled backing when one is large enough. The result's storage
/// (when it has any) is [`PAYLOAD_ALIGN`]-byte aligned.
pub fn take(min_capacity: usize) -> Vec<u8> {
    let reused = FREE.with(|free| {
        let mut free = free.borrow_mut();
        // Best fit: the smallest adequate backing. Taking any adequate one
        // lets a tiny request steal a large backing and starve the next
        // large request into a miss.
        let (idx, _) = free
            .iter()
            .enumerate()
            .filter(|(_, v)| v.capacity() >= min_capacity)
            .min_by_key(|(_, v)| v.capacity())?;
        Some(free.swap_remove(idx))
    });
    match reused {
        Some(v) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            debug_assert!(v.is_empty());
            debug_assert!(is_aligned(&v), "pool retained a misaligned backing");
            v
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            alloc_aligned(min_capacity)
        }
    }
}

/// Returns a no-longer-needed byte vector to the current thread's pool.
///
/// Zero-capacity vectors (nothing to reuse), oversized ones, and any that
/// lost the [`PAYLOAD_ALIGN`] guarantee are dropped.
pub fn give(mut v: Vec<u8>) {
    if v.capacity() == 0 || v.capacity() > MAX_RETAINED_CAPACITY || !is_aligned(&v) {
        return;
    }
    v.clear();
    FREE.with(|free| {
        let mut free = free.borrow_mut();
        if free.len() < MAX_POOLED {
            free.push(v);
        }
    });
}

/// Process-wide `(hits, misses)` counts since start (or since the last
/// [`reset_counters`]).
pub fn counters() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Zeroes the process-wide hit/miss counters.
///
/// This affects every observer in the process at once — including other
/// kernels and concurrently running tests — so it belongs at the start of a
/// single-threaded measurement section, not in library code. The pooled
/// backings themselves are untouched (each thread keeps its free list).
pub fn reset_counters() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_round_trip() {
        // Prime the pool, then verify the same backing comes back.
        give(Vec::with_capacity(128));
        let (h0, _) = counters();
        let v = take(64);
        assert!(v.capacity() >= 64);
        let (h1, _) = counters();
        assert_eq!(h1, h0 + 1);
    }

    #[test]
    fn small_requests_do_not_steal_nothing() {
        let (_, m0) = counters();
        // An empty pool (or no large-enough backing) is a miss.
        let v = take(MAX_RETAINED_CAPACITY + 1);
        assert!(v.capacity() > MAX_RETAINED_CAPACITY);
        let (_, m1) = counters();
        assert_eq!(m1, m0 + 1);
        // Oversized backings are not retained.
        give(v);
        let w = take(MAX_RETAINED_CAPACITY + 1);
        let (_, m2) = counters();
        assert_eq!(m2, m1 + 1);
        drop(w);
    }

    #[test]
    fn give_clears_contents() {
        give(vec![1, 2, 3]);
        let v = take(1);
        assert!(v.is_empty());
    }

    #[test]
    fn payload_regions_are_eight_byte_aligned() {
        // Fresh allocations across a spread of sizes, including ones small
        // enough that a naive allocator might under-align them.
        for size in [1usize, 2, 3, 7, 8, 9, 64, 1000, 4096] {
            let v = take(size);
            assert!(v.capacity() >= size);
            assert_eq!(
                v.as_ptr() as usize % PAYLOAD_ALIGN,
                0,
                "take({size}) returned a misaligned backing"
            );
            give(v);
        }
        // Reused backings keep the guarantee.
        for _ in 0..16 {
            let v = take(32);
            assert!(is_aligned(&v));
            give(v);
        }
    }
}
