//! Deterministic fault-injection / jitter RNG.
//!
//! The network layer needs a loss roll and a jitter fraction per hop, and
//! the retry engine needs backoff jitter — so the workspace carries one
//! tiny SplitMix64 generator instead of an external dependency (the build
//! environment has no crates.io access). Determinism per seed is part of
//! the contract: tests reseed via `Network::reseed` and expect reproducible
//! drop patterns, and the exactly-once fault-injection suite sweeps seeds.

/// SplitMix64 — 64 bits of state, one multiply-xorshift chain per draw.
#[derive(Clone, Debug)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_unit_range() {
        let mut a = FaultRng::seed_from_u64(5);
        let mut b = FaultRng::seed_from_u64(5);
        for _ in 0..100 {
            let x = a.unit_f64();
            assert_eq!(x, b.unit_f64());
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultRng::seed_from_u64(1);
        let mut b = FaultRng::seed_from_u64(2);
        assert_ne!(a.unit_f64(), b.unit_f64());
    }
}
