//! Cross-layer pipelining hints: how callers tell the transport that more
//! calls are coming.
//!
//! Promise-pipelining subcontracts (see `spring-subcontracts`' `Pipeline`)
//! issue several calls before collecting any reply. The transport can then
//! coalesce the queued calls into one wire frame — but only if it knows
//! whether waiting for more traffic is worthwhile. That knowledge lives
//! here, in the kernel, because it is the one crate both the subcontract
//! runtime (producers of calls) and the network (consumer of calls) already
//! depend on.
//!
//! Three tiny primitives, all process-global and allocation-free on the
//! fast path:
//!
//! * **Announcements** — a counter of logical calls currently in flight
//!   through a pipelining-aware path. A batcher holding fewer queued calls
//!   than the announced count may keep coalescing; when the counter is
//!   zero nothing else is coming and queued traffic should leave
//!   immediately. Plain synchronous calls never announce, so they are never
//!   delayed.
//! * **Urgency** — an epoch bumped by a collector that is blocked on a
//!   reply. Batchers compare the epoch against the value they sampled when
//!   their batch started forming: a change means someone is waiting on
//!   (possibly) one of the queued calls, and further coalescing trades
//!   real latency for hypothetical wins.
//! * **Wakers** — callbacks registered by batchers so an urgency bump can
//!   interrupt their linger sleep instead of waiting for it to time out.
//!
//! These are *hints*: every flush decision remains bounded by the
//! transport's own linger budget, so a stale announcement can delay a
//! frame by at most that budget, never forever.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Logical calls currently in flight through pipelining-aware paths.
static ANNOUNCED: AtomicU64 = AtomicU64::new(0);

/// Epoch bumped each time a collector blocks on a reply.
static URGENT: AtomicU64 = AtomicU64::new(0);

/// Batcher wakeups to run on an urgency bump. Weak so a torn-down network
/// unregisters itself by dropping; dead entries are pruned on each urge.
static WAKERS: Mutex<Vec<Weak<dyn Fn() + Send + Sync>>> = Mutex::new(Vec::new());

/// Declares one more pipelined call in flight. Pair with [`retract`], or
/// use [`announce_scope`] for panic-safe balancing.
pub fn announce() {
    ANNOUNCED.fetch_add(1, Ordering::Relaxed);
}

/// Withdraws one [`announce`]. Saturates at zero rather than wrapping, so
/// an unbalanced retract cannot convince batchers that traffic is coming
/// forever.
pub fn retract() {
    let _ = ANNOUNCED.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
}

/// The number of pipelined calls currently announced.
pub fn announced() -> u64 {
    ANNOUNCED.load(Ordering::Relaxed)
}

/// RAII balance for [`announce`]/[`retract`].
pub struct AnnounceGuard(());

/// Announces a pipelined call for the lifetime of the returned guard.
pub fn announce_scope() -> AnnounceGuard {
    announce();
    AnnounceGuard(())
}

impl Drop for AnnounceGuard {
    fn drop(&mut self) {
        retract();
    }
}

/// Signals that a collector is blocked on a reply: bumps the urgency epoch
/// and runs every registered waker so lingering batchers flush now.
pub fn urge() {
    URGENT.fetch_add(1, Ordering::Relaxed);
    let wakers: Vec<Arc<dyn Fn() + Send + Sync>> = {
        let mut registered = WAKERS.lock().unwrap_or_else(|p| p.into_inner());
        registered.retain(|w| w.strong_count() > 0);
        registered.iter().filter_map(Weak::upgrade).collect()
    };
    for w in wakers {
        w();
    }
}

/// The current urgency epoch. Batchers sample it when a batch starts
/// forming; a later change means a collector is waiting.
pub fn urgent_epoch() -> u64 {
    URGENT.load(Ordering::Relaxed)
}

/// Registers a wakeup to run on every [`urge`]. Held weakly: dropping the
/// last `Arc` unregisters the waker.
pub fn register_waker(waker: &Arc<dyn Fn() + Send + Sync>) {
    WAKERS
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(Arc::downgrade(waker));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn announce_retract_balance() {
        let base = announced();
        announce();
        announce();
        assert_eq!(announced(), base + 2);
        retract();
        retract();
        assert_eq!(announced(), base);
    }

    #[test]
    fn retract_saturates_at_zero() {
        while announced() > 0 {
            retract();
        }
        retract();
        assert_eq!(announced(), 0);
    }

    #[test]
    fn guard_balances_on_drop() {
        let base = announced();
        {
            let _g = announce_scope();
            assert_eq!(announced(), base + 1);
        }
        assert_eq!(announced(), base);
    }

    #[test]
    fn urge_bumps_epoch_and_runs_live_wakers() {
        static HITS: AtomicUsize = AtomicUsize::new(0);
        let waker: Arc<dyn Fn() + Send + Sync> = Arc::new(|| {
            HITS.fetch_add(1, Ordering::Relaxed);
        });
        register_waker(&waker);
        let before = urgent_epoch();
        let hits_before = HITS.load(Ordering::Relaxed);
        urge();
        assert_eq!(urgent_epoch(), before + 1);
        assert_eq!(HITS.load(Ordering::Relaxed), hits_before + 1);

        // Dropping the Arc unregisters: further urges do not run it.
        drop(waker);
        urge();
        assert_eq!(HITS.load(Ordering::Relaxed), hits_before + 1);
    }
}
