//! Per-invocation call identity for at-most-once delivery.
//!
//! Retrying subcontracts (replicon §5.1.3, reconnectable §8.3) re-issue a
//! call on any communications error. When the loss hit the *reply* hop, the
//! server has already executed the call, so a blind retry double-executes
//! non-idempotent operations. The fix is the paper's own piggyback
//! convention: subcontract control data rides the call envelope next to the
//! out-of-band door identifiers. [`CallId`] is that control data — a client
//! nonce naming the logical invocation, an attempt counter, and an absolute
//! deadline — and the server-side reply cache keyed by the nonce turns
//! at-least-once retries into at-most-once invocations.
//!
//! The all-zero value ([`CallId::NONE`]) means "no identity": ordinary
//! non-retrying calls carry it at zero cost (no allocation, a 20-byte copy
//! on the wire, and every dedup lookup is skipped).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The identity of one logical invocation, piggybacked in the
/// [`crate::Message`] envelope exactly like the trace context.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct CallId {
    /// Client-chosen nonce naming the logical call; all retry attempts of
    /// one call share it. Zero means "no identity" (non-retrying calls).
    pub nonce: u64,
    /// Attempt counter, starting at 1 for the first transmission.
    pub attempt: u32,
    /// Absolute per-invocation deadline in microseconds of process uptime
    /// ([`now_micros`] clock), or 0 for "no deadline". Servers may refuse
    /// to execute expired calls; clients stop retrying past it.
    pub deadline_micros: u64,
}

impl CallId {
    /// Number of bytes of the wire form.
    pub const WIRE_LEN: usize = 20;

    /// The absent identity (all zeroes on the wire).
    pub const NONE: CallId = CallId {
        nonce: 0,
        attempt: 0,
        deadline_micros: 0,
    };

    /// Returns true when this is the absent identity.
    #[inline]
    pub fn is_none(self) -> bool {
        self.nonce == 0
    }

    /// Returns true when this names a real invocation.
    #[inline]
    pub fn is_some(self) -> bool {
        self.nonce != 0
    }

    /// Returns true when the deadline is set and has passed.
    #[inline]
    pub fn is_expired(self) -> bool {
        self.deadline_micros != 0 && now_micros() > self.deadline_micros
    }

    /// The 20-byte wire form (little-endian nonce, attempt, deadline).
    pub fn to_bytes(self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[..8].copy_from_slice(&self.nonce.to_le_bytes());
        out[8..12].copy_from_slice(&self.attempt.to_le_bytes());
        out[12..].copy_from_slice(&self.deadline_micros.to_le_bytes());
        out
    }

    /// Rebuilds an identity from its 20-byte wire form.
    pub fn from_bytes(raw: [u8; Self::WIRE_LEN]) -> CallId {
        CallId {
            nonce: u64::from_le_bytes(raw[..8].try_into().expect("8 bytes")),
            attempt: u32::from_le_bytes(raw[8..12].try_into().expect("4 bytes")),
            deadline_micros: u64::from_le_bytes(raw[12..].try_into().expect("8 bytes")),
        }
    }
}

/// Process-wide nonce allocator. Deterministic (a counter, not a random
/// source) so tests can assert on orderings; uniqueness within the process
/// is all the simulated network needs, exactly as for trace identifiers.
static NEXT_NONCE: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh nonzero call nonce.
pub fn next_nonce() -> u64 {
    NEXT_NONCE.fetch_add(1, Ordering::Relaxed)
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds of process uptime — the clock [`CallId::deadline_micros`]
/// is expressed in. A monotonic process-local clock is sufficient because
/// the whole simulated network lives in one process; a real deployment
/// would carry a *remaining budget* instead and re-anchor it per hop.
pub fn now_micros() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// The [`now_micros`] value `d` from now, saturating, never returning the
/// reserved 0 ("no deadline").
pub fn deadline_after(d: Duration) -> u64 {
    (now_micros().saturating_add(d.as_micros() as u64)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        let id = CallId {
            nonce: 0x0123_4567_89ab_cdef,
            attempt: 7,
            deadline_micros: 42,
        };
        assert_eq!(CallId::from_bytes(id.to_bytes()), id);
        assert_eq!(id.to_bytes().len(), CallId::WIRE_LEN);
        assert_eq!(CallId::from_bytes([0; CallId::WIRE_LEN]), CallId::NONE);
    }

    #[test]
    fn none_is_none() {
        assert!(CallId::NONE.is_none());
        assert!(!CallId::NONE.is_some());
        assert!(!CallId::NONE.is_expired());
        assert!(CallId {
            nonce: 1,
            ..CallId::NONE
        }
        .is_some());
    }

    #[test]
    fn nonces_are_unique_and_nonzero() {
        let a = next_nonce();
        let b = next_nonce();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn deadlines_expire() {
        // Anchor the process clock first: the epoch initializes on first
        // use, so uptime must accrue before a 1 µs deadline can pass.
        let _ = now_micros();
        let past = CallId {
            nonce: 1,
            attempt: 1,
            deadline_micros: 1,
        };
        std::thread::sleep(Duration::from_micros(10));
        assert!(past.is_expired());
        let future = CallId {
            nonce: 1,
            attempt: 1,
            deadline_micros: deadline_after(Duration::from_secs(3600)),
        };
        assert!(!future.is_expired());
    }
}
