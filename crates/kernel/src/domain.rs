//! Domain handles and the door-handler trait.

use std::fmt;
use std::sync::Arc;

use crate::error::DoorError;
use crate::id::{DomainId, DoorId};
use crate::kernel::Kernel;
use crate::message::Message;

/// Context passed to a [`DoorHandler`] for each incoming call.
///
/// Spring door calls shuttle the caller's thread into the serving domain;
/// the context tells the handler which domain it is logically executing in
/// (so it can perform kernel operations on that domain's behalf) and which
/// domain issued the call.
pub struct CallCtx {
    /// The domain that issued the call.
    pub caller: DomainId,
    /// The domain serving the door; door identifiers in the incoming message
    /// are owned by this domain, and identifiers placed in the reply must be
    /// owned by it too.
    pub server: Domain,
}

/// The target of a door: server-side code invoked for each call.
///
/// Handlers run on the caller's thread (Spring's thread shuttling), so they
/// must be `Send + Sync`. A handler receives messages whose door identifiers
/// have already been translated into the serving domain's table.
pub trait DoorHandler: Send + Sync {
    /// Processes one incoming call and produces the reply message.
    fn invoke(&self, ctx: &CallCtx, msg: Message) -> Result<Message, DoorError>;

    /// Called once when the last door identifier for this door is deleted,
    /// so the server can clean up (§7: "the kernel will notify the door's
    /// target ... so that it can clean up").
    fn unreferenced(&self) {}
}

impl<F> DoorHandler for F
where
    F: Fn(&CallCtx, Message) -> Result<Message, DoorError> + Send + Sync,
{
    fn invoke(&self, ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        self(ctx, msg)
    }
}

/// A handle on one domain (simulated address space) of a [`Kernel`].
///
/// Cloning the handle does not create a new domain; it is the same domain
/// observed from another place (handles are reference-like).
#[derive(Clone)]
pub struct Domain {
    kernel: Kernel,
    id: DomainId,
}

impl Domain {
    pub(crate) fn new(kernel: Kernel, id: DomainId) -> Self {
        Domain { kernel, id }
    }

    /// This domain's identifier.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// The kernel this domain belongs to.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The human-readable name given at creation.
    pub fn name(&self) -> String {
        self.kernel.domain_name(self.id)
    }

    /// Returns true while the domain has not crashed.
    pub fn is_alive(&self) -> bool {
        self.kernel.domain_alive(self.id)
    }

    /// The trace scope tag for this domain: `node << 32 | domain`. Spans
    /// opened while executing in this domain record into the per-scope ring
    /// buffer tagged with this value (see the `spring-trace` crate).
    pub fn trace_scope(&self) -> u64 {
        (self.kernel.node_id().raw() << 32) | self.id.raw()
    }

    /// Creates a door served by this domain and returns the first identifier.
    pub fn create_door(&self, handler: Arc<dyn DoorHandler>) -> Result<DoorId, DoorError> {
        self.kernel.create_door(self.id, handler)
    }

    /// Issues a call on a door identifier owned by this domain.
    ///
    /// Door identifiers carried by `msg` are transferred to the serving
    /// domain; identifiers in the reply are transferred back to this domain.
    pub fn call(&self, door: DoorId, msg: Message) -> Result<Message, DoorError> {
        self.kernel.call(self.id, door, msg)
    }

    /// Copies a door identifier, yielding a second, independent identifier
    /// for the same door (the kernel operation behind the simplex
    /// subcontract's `copy`, §7).
    pub fn copy_door(&self, door: DoorId) -> Result<DoorId, DoorError> {
        self.kernel.copy_door(self.id, door)
    }

    /// Moves a door identifier to another domain without a door call
    /// (used by infrastructure such as the network servers).
    pub fn transfer_door(&self, door: DoorId, to: &Domain) -> Result<DoorId, DoorError> {
        self.kernel.transfer_door(self.id, door, to.id)
    }

    /// Deletes a door identifier owned by this domain. Deleting the last
    /// identifier for a door triggers the handler's
    /// [`DoorHandler::unreferenced`] notification.
    pub fn delete_door(&self, door: DoorId) -> Result<(), DoorError> {
        self.kernel.delete_door(self.id, door)
    }

    /// Revokes a door served by this domain: outstanding identifiers remain
    /// but every future call fails with [`DoorError::Revoked`] (§5.2.3).
    pub fn revoke_door(&self, door: DoorId) -> Result<(), DoorError> {
        self.kernel.revoke_door(self.id, door)
    }

    /// Returns true when `door` is a live identifier owned by this domain.
    pub fn door_is_valid(&self, door: DoorId) -> bool {
        self.kernel.door_is_valid(self.id, door)
    }

    /// Resolves an identifier to its kernel-internal door token (trusted
    /// infrastructure only; see [`Kernel`] internals). Two identifiers
    /// denote the same door iff their tokens are equal.
    pub fn door_token(&self, door: DoorId) -> Result<u64, DoorError> {
        self.kernel.door_token(self.id, door)
    }

    /// Simulates a crash of this domain: its doors are revoked and all door
    /// identifiers it owns are deleted.
    pub fn crash(&self) {
        self.kernel.crash_domain(self.id);
    }
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Domain({:?} on {:?})", self.id, self.kernel.node_id())
    }
}
