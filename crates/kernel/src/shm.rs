//! Simulated shared-memory regions.
//!
//! Some Spring subcontracts use shared memory regions to communicate with
//! their servers; `invoke_preamble` lets such a subcontract "adjust the
//! communications buffer to point into the shared memory region so that
//! arguments are directly marshalled into the region, rather than having to
//! be copied there after all marshalling is complete" (§5.1.4). Normal door
//! calls copy their payload bytes across the domain boundary; a shared
//! region is visible to both sides without that copy.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::DoorError;
use crate::id::ShmId;

/// A shared-memory region, registered with one kernel and addressable by its
/// [`ShmId`].
///
/// Cloning the handle shares the same underlying storage, modelling two
/// domains mapping the same physical region.
///
/// # Examples
///
/// ```
/// use spring_kernel::Kernel;
///
/// let kernel = Kernel::new("machine");
/// let region = kernel.create_shm(64);
/// region.map_mut().unwrap()[0] = 42;
/// assert_eq!(region.with(|data| data[0]).unwrap(), 42);
/// ```
#[derive(Clone)]
pub struct ShmRegion {
    id: ShmId,
    size: usize,
    data: Arc<Mutex<Option<Vec<u8>>>>,
}

impl ShmRegion {
    pub(crate) fn new(id: ShmId, size: usize) -> Self {
        // Regions back flat-frame decoding (`CommBuffer::flat_remaining`),
        // which relies on the same 8-byte base alignment the buffer pool
        // guarantees (`crate::pool::PAYLOAD_ALIGN`); allocate with the same
        // retry discipline as the pool rather than assuming the allocator
        // over-aligns byte vectors.
        let mut parked = Vec::new();
        let data = loop {
            let v = vec![0u8; size];
            if v.capacity() == 0 || (v.as_ptr() as usize).is_multiple_of(crate::pool::PAYLOAD_ALIGN)
            {
                break v;
            }
            // Keep the misaligned block alive so the next attempt gets a
            // different address.
            parked.push(v);
            if parked.len() > 8 {
                debug_assert!(false, "allocator never produced an 8-byte-aligned region");
                break parked.pop().expect("just pushed");
            }
        };
        ShmRegion {
            id,
            size,
            data: Arc::new(Mutex::new(Some(data))),
        }
    }

    /// The region's kernel-wide identifier.
    pub fn id(&self) -> ShmId {
        self.id
    }

    /// The region's size in bytes, fixed at creation.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Maps the region for direct access.
    ///
    /// Only one mapping may be live at a time; a second concurrent mapping
    /// fails with [`DoorError::InvalidShm`]. This models the exclusive
    /// hand-off discipline shared-memory transports follow: the client fills
    /// the region, then the server reads it, never both at once.
    pub fn map_mut(&self) -> Result<MappedShm, DoorError> {
        let data = self.data.lock().take().ok_or(DoorError::InvalidShm)?;
        Ok(MappedShm {
            region: self.clone(),
            data: Some(data),
        })
    }

    /// Runs `f` over a read-only view of the region.
    ///
    /// Fails if the region is currently mapped with [`ShmRegion::map_mut`].
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> Result<R, DoorError> {
        let guard = self.data.lock();
        let data = guard.as_ref().ok_or(DoorError::InvalidShm)?;
        Ok(f(data))
    }
}

impl fmt::Debug for ShmRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShmRegion({:?}, {} bytes)", self.id, self.size)
    }
}

/// An exclusive mapping of a [`ShmRegion`].
///
/// Dereferences to the region's bytes; the contents are published back to the
/// region when the mapping is dropped.
#[derive(Debug)]
pub struct MappedShm {
    region: ShmRegion,
    data: Option<Vec<u8>>,
}

impl Deref for MappedShm {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        // The Option is only `None` transiently inside `drop`.
        self.data.as_ref().expect("mapping already unmapped")
    }
}

impl DerefMut for MappedShm {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        self.data.as_mut().expect("mapping already unmapped")
    }
}

impl Drop for MappedShm {
    fn drop(&mut self) {
        if let Some(data) = self.data.take() {
            *self.region.data.lock() = Some(data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ShmId;

    #[test]
    fn regions_are_eight_byte_aligned() {
        // Flat frames are decoded in place out of regions; the base address
        // must satisfy the same alignment as pooled payload backings.
        for (i, size) in [1usize, 7, 60, 257, 4096].into_iter().enumerate() {
            let region = ShmRegion::new(ShmId(100 + i as u64), size);
            region
                .with(|d| {
                    assert_eq!(
                        d.as_ptr() as usize % crate::pool::PAYLOAD_ALIGN,
                        0,
                        "region of {size} bytes is misaligned"
                    )
                })
                .unwrap();
        }
    }

    #[test]
    fn map_write_read_back() {
        let region = ShmRegion::new(ShmId(1), 16);
        {
            let mut m = region.map_mut().unwrap();
            m[0] = 0xAB;
            m[15] = 0xCD;
        }
        let (a, b) = region.with(|d| (d[0], d[15])).unwrap();
        assert_eq!((a, b), (0xAB, 0xCD));
    }

    #[test]
    fn double_map_rejected() {
        let region = ShmRegion::new(ShmId(2), 8);
        let _m = region.map_mut().unwrap();
        assert_eq!(region.map_mut().unwrap_err(), DoorError::InvalidShm);
        assert_eq!(region.with(|_| ()).unwrap_err(), DoorError::InvalidShm);
    }

    #[test]
    fn clone_shares_storage() {
        let region = ShmRegion::new(ShmId(3), 4);
        let other = region.clone();
        region.map_mut().unwrap()[2] = 7;
        assert_eq!(other.with(|d| d[2]).unwrap(), 7);
        assert_eq!(other.size(), 4);
        assert_eq!(other.id(), region.id());
    }

    #[test]
    fn mapping_can_grow_buffer() {
        // Marshalling may push past the initial size; the grown buffer is
        // published back.
        let region = ShmRegion::new(ShmId(4), 2);
        {
            let mut m = region.map_mut().unwrap();
            m.extend_from_slice(&[1, 2, 3, 4]);
        }
        assert_eq!(region.with(|d| d.len()).unwrap(), 6);
    }
}
