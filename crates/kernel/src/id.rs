//! Identifier newtypes used throughout the simulated nucleus.

use std::fmt;

/// Identifies one simulated machine (one [`crate::Kernel`] instance).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u64);

impl NodeId {
    /// Returns the raw numeric value, mainly for logging and wire formats.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a `NodeId` from its raw value (used by network wire formats).
    pub fn from_raw(raw: u64) -> Self {
        NodeId(raw)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", self.0)
    }
}

/// Identifies a domain (a simulated address space) within one kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub(crate) u64);

impl DomainId {
    /// Returns the raw numeric value, mainly for logging.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain:{}", self.0)
    }
}

/// A door identifier: a per-domain capability handle for one door.
///
/// A `DoorId` is only meaningful inside the domain that owns it (like a file
/// descriptor). The kernel validates ownership on every operation, so a
/// forged or stale identifier is rejected with
/// [`DoorError::InvalidDoor`](crate::DoorError::InvalidDoor). Identifiers are
/// never reused: each issue gets a fresh slot number.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DoorId {
    pub(crate) owner: DomainId,
    pub(crate) slot: u64,
}

impl DoorId {
    /// The domain this identifier belongs to.
    pub fn owner(self) -> DomainId {
        self.owner
    }

    /// The slot number within the owner's door table (for logging).
    pub fn slot(self) -> u64 {
        self.slot
    }
}

impl fmt::Debug for DoorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "door:{}.{}", self.owner.0, self.slot)
    }
}

/// Identifies a shared-memory region within one kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShmId(pub(crate) u64);

impl ShmId {
    /// Returns the raw numeric value for embedding in message payloads.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a `ShmId` from its raw value.
    pub fn from_raw(raw: u64) -> Self {
        ShmId(raw)
    }
}

impl fmt::Debug for ShmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shm:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrips() {
        assert_eq!(NodeId::from_raw(7).raw(), 7);
        assert_eq!(ShmId::from_raw(9).raw(), 9);
    }

    #[test]
    fn debug_formats_are_compact() {
        let d = DoorId {
            owner: DomainId(3),
            slot: 12,
        };
        assert_eq!(format!("{d:?}"), "door:3.12");
        assert_eq!(format!("{:?}", NodeId(1)), "node:1");
        assert_eq!(format!("{:?}", DomainId(2)), "domain:2");
        assert_eq!(format!("{:?}", ShmId(4)), "shm:4");
    }
}
