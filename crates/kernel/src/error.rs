//! Error type for door operations.

use std::fmt;

/// Errors returned by door operations on the simulated nucleus.
///
/// The distinction that matters to subcontracts is *communication failure*
/// versus *programming error*: the paper's replicon subcontract, for example,
/// drops a replica and tries the next one only "if the door invocation fails
/// due to a communications error" (§5.1.3). [`DoorError::is_comm_failure`]
/// encodes that classification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DoorError {
    /// The door identifier is not owned by the calling domain, or has been
    /// deleted. Capabilities are validated on every kernel operation.
    InvalidDoor,
    /// The door has been revoked by its server (§5.2.3), or the serving
    /// domain has crashed.
    Revoked,
    /// The calling or serving domain is no longer alive.
    DomainDead,
    /// A network-level failure injected by the network servers (message
    /// lost, partition, remote node unreachable).
    Comm(String),
    /// The door handler failed internally (for example, it panicked).
    Handler(String),
    /// The operation is not permitted (for example, revoking a door from a
    /// domain that does not serve it).
    NotPermitted,
    /// A shared-memory region identifier did not resolve.
    InvalidShm,
}

impl DoorError {
    /// Returns true when the failure should be treated as a communications
    /// error by fault-tolerant subcontracts (replicon, reconnectable).
    pub fn is_comm_failure(&self) -> bool {
        matches!(
            self,
            DoorError::Revoked | DoorError::DomainDead | DoorError::Comm(_)
        )
    }
}

impl fmt::Display for DoorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DoorError::InvalidDoor => write!(f, "invalid door identifier"),
            DoorError::Revoked => write!(f, "door revoked or server crashed"),
            DoorError::DomainDead => write!(f, "domain is dead"),
            DoorError::Comm(why) => write!(f, "communication failure: {why}"),
            DoorError::Handler(why) => write!(f, "door handler failure: {why}"),
            DoorError::NotPermitted => write!(f, "operation not permitted"),
            DoorError::InvalidShm => write!(f, "invalid shared-memory region"),
        }
    }
}

impl std::error::Error for DoorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_failure_classification() {
        assert!(DoorError::Revoked.is_comm_failure());
        assert!(DoorError::DomainDead.is_comm_failure());
        assert!(DoorError::Comm("lost".into()).is_comm_failure());
        assert!(!DoorError::InvalidDoor.is_comm_failure());
        assert!(!DoorError::Handler("x".into()).is_comm_failure());
        assert!(!DoorError::NotPermitted.is_comm_failure());
    }

    #[test]
    fn display_is_informative() {
        let msg = DoorError::Comm("partition".into()).to_string();
        assert!(msg.contains("partition"));
    }
}
