//! Simulated Spring nucleus: domains, doors, and door identifiers.
//!
//! The Spring kernel (the "nucleus", Hamilton & Kougiouris 1993) provides an
//! object-oriented inter-process communication mechanism called *doors*. A
//! door is a communication endpoint to which threads may execute cross
//! address space calls. A domain that creates a door receives a *door
//! identifier*, which it can pass to other domains so that they can issue
//! calls to the associated door. Door identifiers function as software
//! capabilities: only the legitimate owner of a door identifier may issue a
//! call on its associated door, and the kernel manages all operations on
//! doors and door identifiers — construction, destruction, copying, and
//! transmission.
//!
//! This crate simulates that nucleus inside a single process:
//!
//! * A [`Kernel`] corresponds to one machine's nucleus (one per simulated
//!   node; see the `spring-net` crate for multi-node setups).
//! * A [`Domain`] is a simulated address space plus a collection of threads.
//!   Domains exchange only [`Message`] values (bytes plus door identifiers);
//!   no Rust references cross a domain boundary.
//! * A [`DoorId`] is a per-domain capability handle, valid only for the
//!   domain that owns it. Sending a message *transfers* the identifiers it
//!   carries (the kernel re-issues them in the receiving domain), exactly as
//!   Spring transfers door identifiers between address spaces.
//! * Door calls run on the caller's thread, faithful to Spring's
//!   thread-shuttling door invocation.
//! * Call and reply byte payloads are physically copied to simulate the
//!   cross-address-space copy a real kernel performs; shared-memory regions
//!   ([`ShmRegion`]) avoid that copy, which is what the paper's
//!   shared-memory subcontracts exploit via `invoke_preamble` (§5.1.4).
//!
//! # Examples
//!
//! ```
//! use spring_kernel::{Kernel, Message, DoorError, CallCtx, DoorHandler};
//! use std::sync::Arc;
//!
//! struct Echo;
//! impl DoorHandler for Echo {
//!     fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
//!         Ok(msg)
//!     }
//! }
//!
//! let kernel = Kernel::new("node-a");
//! let server = kernel.create_domain("server");
//! let client = kernel.create_domain("client");
//! let door = server.create_door(Arc::new(Echo)).unwrap();
//! let id = server.transfer_door(door, &client).unwrap();
//! let reply = client.call(id, Message::from_bytes(vec![1, 2, 3])).unwrap();
//! assert_eq!(reply.bytes, vec![1, 2, 3]);
//! ```

pub mod batching;
pub mod callid;
mod domain;
mod error;
mod id;
mod kernel;
mod message;
pub mod pool;
mod rng;
mod shm;
mod stats;

pub use callid::CallId;
pub use domain::{CallCtx, Domain, DoorHandler};
pub use error::DoorError;
pub use id::{DomainId, DoorId, NodeId, ShmId};
pub use kernel::Kernel;
pub use message::{framing, Message};
pub use rng::FaultRng;
pub use shm::{MappedShm, ShmRegion};
pub use stats::{KernelStats, StatsSnapshot};
