//! Kernel-wide counters used by the benchmark harness.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::pool;

/// Monotonic counters maintained by one [`crate::Kernel`].
///
/// The benchmark harness reports these alongside wall-clock timings because
/// they are hardware independent: the paper's claims about resource usage
/// (for example, the cluster subcontract sharing one door among many objects,
/// §8.1) are checked against these counts, not against 1993 microseconds.
#[derive(Debug, Default)]
pub struct KernelStats {
    pub(crate) doors_created: AtomicU64,
    pub(crate) door_calls: AtomicU64,
    pub(crate) bytes_copied: AtomicU64,
    pub(crate) ids_issued: AtomicU64,
    pub(crate) ids_deleted: AtomicU64,
    pub(crate) ids_transferred: AtomicU64,
    pub(crate) unref_notifications: AtomicU64,
    pub(crate) revocations: AtomicU64,
    pub(crate) table_lock_waits: AtomicU64,
    pub(crate) shard_lock_waits: AtomicU64,
}

/// A point-in-time snapshot of [`KernelStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Doors created since kernel start.
    pub doors_created: u64,
    /// Door calls executed (including failed deliveries).
    pub door_calls: u64,
    /// Payload bytes physically copied across domain boundaries.
    pub bytes_copied: u64,
    /// Door identifiers issued (creation, copy, and transfer each issue one).
    pub ids_issued: u64,
    /// Door identifiers deleted.
    pub ids_deleted: u64,
    /// Door identifiers moved between domains by message transfer.
    pub ids_transferred: u64,
    /// Unreferenced notifications delivered to door handlers.
    pub unref_notifications: u64,
    /// Doors revoked (explicitly or by domain crash).
    pub revocations: u64,
    /// Times a domain door-table lock was contended (blocked on acquire).
    pub table_lock_waits: u64,
    /// Times a door-shard lock was contended (blocked on acquire).
    pub shard_lock_waits: u64,
    /// Buffer-pool hits (process-wide; the pool is per-thread, not
    /// per-kernel, so every kernel reports the same numbers).
    pub pool_hits: u64,
    /// Buffer-pool misses (process-wide, see `pool_hits`).
    pub pool_misses: u64,
}

impl KernelStats {
    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let (pool_hits, pool_misses) = pool::counters();
        StatsSnapshot {
            doors_created: self.doors_created.load(Ordering::Relaxed),
            door_calls: self.door_calls.load(Ordering::Relaxed),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            ids_issued: self.ids_issued.load(Ordering::Relaxed),
            ids_deleted: self.ids_deleted.load(Ordering::Relaxed),
            ids_transferred: self.ids_transferred.load(Ordering::Relaxed),
            unref_notifications: self.unref_notifications.load(Ordering::Relaxed),
            revocations: self.revocations.load(Ordering::Relaxed),
            table_lock_waits: self.table_lock_waits.load(Ordering::Relaxed),
            shard_lock_waits: self.shard_lock_waits.load(Ordering::Relaxed),
            pool_hits,
            pool_misses,
        }
    }
}

impl StatsSnapshot {
    /// Component-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            doors_created: self.doors_created.saturating_sub(earlier.doors_created),
            door_calls: self.door_calls.saturating_sub(earlier.door_calls),
            bytes_copied: self.bytes_copied.saturating_sub(earlier.bytes_copied),
            ids_issued: self.ids_issued.saturating_sub(earlier.ids_issued),
            ids_deleted: self.ids_deleted.saturating_sub(earlier.ids_deleted),
            ids_transferred: self.ids_transferred.saturating_sub(earlier.ids_transferred),
            unref_notifications: self
                .unref_notifications
                .saturating_sub(earlier.unref_notifications),
            revocations: self.revocations.saturating_sub(earlier.revocations),
            table_lock_waits: self
                .table_lock_waits
                .saturating_sub(earlier.table_lock_waits),
            shard_lock_waits: self
                .shard_lock_waits
                .saturating_sub(earlier.shard_lock_waits),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff() {
        let stats = KernelStats::default();
        stats.door_calls.fetch_add(1, Ordering::Relaxed);
        stats.bytes_copied.fetch_add(10, Ordering::Relaxed);
        let a = stats.snapshot();
        stats.door_calls.fetch_add(2, Ordering::Relaxed);
        stats.bytes_copied.fetch_add(10, Ordering::Relaxed);
        let b = stats.snapshot();
        let d = b.since(&a);
        assert_eq!(d.door_calls, 2);
        assert_eq!(d.bytes_copied, 10);
        assert_eq!(d.doors_created, 0);
        assert_eq!(d.table_lock_waits, 0);
        assert_eq!(d.shard_lock_waits, 0);
    }
}
