//! Kernel-wide counters used by the benchmark harness.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::pool;

/// Defines [`KernelStats`] / [`StatsSnapshot`] plus their `snapshot` and
/// `since` plumbing from one field list, so adding a counter is a one-line
/// change instead of four copies of the same name.
///
/// The two pool counters are appended to the snapshot inside the macro:
/// they come from [`pool::counters`], not from per-kernel atomics, because
/// the buffer pool is per-thread state shared by every kernel in the
/// process.
macro_rules! kernel_counters {
    ($( $(#[$doc:meta])* $field:ident, )+) => {
        /// Monotonic counters maintained by one [`crate::Kernel`].
        ///
        /// The benchmark harness reports these alongside wall-clock timings
        /// because they are hardware independent: the paper's claims about
        /// resource usage (for example, the cluster subcontract sharing one
        /// door among many objects, §8.1) are checked against these counts,
        /// not against 1993 microseconds.
        #[derive(Debug, Default)]
        pub struct KernelStats {
            $( pub(crate) $field: AtomicU64, )+
        }

        /// A point-in-time snapshot of [`KernelStats`].
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $( $(#[$doc])* pub $field: u64, )+
            /// Buffer-pool hits (process-wide; the pool is per-thread, not
            /// per-kernel, so every kernel reports the same numbers — see
            /// [`pool::counters`]).
            pub pool_hits: u64,
            /// Buffer-pool misses (process-wide, see `pool_hits`).
            pub pool_misses: u64,
        }

        impl KernelStats {
            /// Takes a consistent-enough snapshot of all counters.
            pub fn snapshot(&self) -> StatsSnapshot {
                let (pool_hits, pool_misses) = pool::counters();
                StatsSnapshot {
                    $( $field: self.$field.load(Ordering::Relaxed), )+
                    pool_hits,
                    pool_misses,
                }
            }
        }

        impl StatsSnapshot {
            /// Component-wise difference `self - earlier`, saturating at
            /// zero.
            pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $( $field: self.$field.saturating_sub(earlier.$field), )+
                    pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
                    pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
                }
            }
        }
    };
}

kernel_counters! {
    /// Doors created since kernel start.
    doors_created,
    /// Door calls executed (including failed deliveries).
    door_calls,
    /// Payload bytes physically copied across domain boundaries.
    bytes_copied,
    /// Door calls delivered within one domain (D2) with the payload passed
    /// through uncopied.
    local_deliveries,
    /// Door identifiers issued (creation, copy, and transfer each issue one).
    ids_issued,
    /// Door identifiers deleted.
    ids_deleted,
    /// Door identifiers moved between domains by message transfer.
    ids_transferred,
    /// Unreferenced notifications delivered to door handlers.
    unref_notifications,
    /// Doors revoked (explicitly or by domain crash).
    revocations,
    /// Times a domain door-table lock was contended (blocked on acquire).
    table_lock_waits,
    /// Times a door-shard lock was contended (blocked on acquire).
    shard_lock_waits,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff() {
        let stats = KernelStats::default();
        stats.door_calls.fetch_add(1, Ordering::Relaxed);
        stats.bytes_copied.fetch_add(10, Ordering::Relaxed);
        let a = stats.snapshot();
        stats.door_calls.fetch_add(2, Ordering::Relaxed);
        stats.bytes_copied.fetch_add(10, Ordering::Relaxed);
        let b = stats.snapshot();
        let d = b.since(&a);
        assert_eq!(d.door_calls, 2);
        assert_eq!(d.bytes_copied, 10);
        assert_eq!(d.doors_created, 0);
        assert_eq!(d.table_lock_waits, 0);
        assert_eq!(d.shard_lock_waits, 0);
    }

    #[test]
    fn since_includes_pool_counters() {
        let a = StatsSnapshot {
            pool_hits: 5,
            pool_misses: 2,
            ..StatsSnapshot::default()
        };
        let b = StatsSnapshot {
            pool_hits: 9,
            pool_misses: 2,
            ..StatsSnapshot::default()
        };
        let d = b.since(&a);
        assert_eq!(d.pool_hits, 4);
        assert_eq!(d.pool_misses, 0);
    }
}
