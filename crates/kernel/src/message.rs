//! The unit of transfer between domains.

use spring_trace::TraceCtx;

use crate::callid::CallId;
use crate::id::DoorId;

/// A message crossing a domain boundary: opaque bytes plus door identifiers.
///
/// Door identifiers are carried out-of-band from the byte payload, exactly as
/// in Spring: the kernel must see every identifier so it can translate it
/// into the receiving domain's door table. Marshalled byte streams reference
/// identifiers by their index in [`Message::doors`].
///
/// Transfer semantics: when a message is sent through a door call, every
/// identifier it carries is *moved* to the receiver — the sender's handle is
/// deleted and a fresh handle is issued in the receiving domain. A sender
/// that wants to retain access must copy the identifier first
/// ([`crate::Domain::copy_door`]), which is precisely the distinction the
/// paper draws between transmitting an object and copying it (§3.2).
#[derive(Debug, Default)]
pub struct Message {
    /// Opaque payload bytes (physically copied across the domain boundary).
    pub bytes: Vec<u8>,
    /// Door identifiers transferred with the message, in slot order.
    pub doors: Vec<DoorId>,
    /// Piggybacked trace context (16 bytes on the wire), carried in the
    /// envelope next to the out-of-band door identifiers — the same channel
    /// subcontracts use for their own dialogue (§5) — so propagation never
    /// touches the payload and stubs stay oblivious (§9.1).
    /// [`TraceCtx::NONE`] when tracing is disabled.
    pub trace: TraceCtx,
    /// Piggybacked call identity (20 bytes on the wire) for at-most-once
    /// invocation: retrying subcontracts stamp every attempt of one logical
    /// call with the same nonce so the server's reply cache can return the
    /// original reply instead of re-executing. [`CallId::NONE`] — the
    /// common case — costs nothing on the fast path.
    pub call: CallId,
}

impl Message {
    /// Creates an empty message.
    pub fn new() -> Self {
        Message::default()
    }

    /// Creates a message carrying only bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Message {
            bytes,
            ..Message::default()
        }
    }

    /// Total payload size in bytes (door identifiers are not counted; the
    /// kernel transfers them without copying payload).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns true when the byte payload is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Length-prefixed framing over byte streams.
///
/// The socket transports carry wire messages over TCP and Unix-domain
/// sockets as frames: a little-endian `u32` byte count followed by exactly
/// that many payload bytes. These helpers own the prefix discipline so
/// every reader in the system enforces the same three rules:
///
/// * a declared length above [`framing::MAX_FRAME_LEN`] is rejected before
///   a single payload byte is read (a corrupt or hostile prefix must not
///   drive an unbounded allocation);
/// * a stream that ends mid-frame reports *how many* bytes arrived against
///   the declared count ([`framing::FrameReadError::Truncated`]), never a
///   bare EOF — the transport maps this onto the typed wire-error taxonomy;
/// * a stream that ends cleanly *between* frames is a normal shutdown
///   ([`framing::FrameReadError::Closed`]), not an error to report.
pub mod framing {
    use std::fmt;
    use std::io::{self, Read, Write};

    /// Largest frame a reader will accept. Generous next to the batching
    /// budgets (a frame coalesces at most `batch_max_bytes` of payload),
    /// but small enough that a garbage length prefix cannot make the
    /// reader allocate gigabytes.
    pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

    /// Why a frame read stopped.
    #[derive(Debug)]
    pub enum FrameReadError {
        /// The stream ended cleanly on a frame boundary: the peer shut the
        /// connection down without leaving a partial frame behind.
        Closed,
        /// The declared length prefix exceeds [`MAX_FRAME_LEN`].
        Oversized {
            /// The length the prefix declared.
            declared: usize,
            /// The largest length this reader accepts.
            max: usize,
        },
        /// The stream ended before the declared byte count arrived — the
        /// length prefix disagrees with the bytes actually received.
        Truncated {
            /// The length the prefix declared.
            declared: usize,
            /// Payload bytes that actually arrived before EOF.
            received: usize,
        },
        /// The underlying stream failed.
        Io(io::Error),
    }

    impl fmt::Display for FrameReadError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                FrameReadError::Closed => write!(f, "stream closed on a frame boundary"),
                FrameReadError::Oversized { declared, max } => {
                    write!(f, "frame declares {declared} bytes, over the {max} cap")
                }
                FrameReadError::Truncated { declared, received } => {
                    write!(f, "frame declares {declared} bytes, got {received}")
                }
                FrameReadError::Io(e) => write!(f, "frame read failed: {e}"),
            }
        }
    }

    impl std::error::Error for FrameReadError {}

    /// Writes one frame: a `u32` little-endian length prefix, then the
    /// payload. Fails if the payload exceeds [`MAX_FRAME_LEN`] — the
    /// writer enforces the same cap readers do, so an oversized frame is
    /// caught before it hits the wire.
    pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame of {} bytes exceeds the {MAX_FRAME_LEN} cap",
                    payload.len()
                ),
            ));
        }
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(payload)?;
        Ok(())
    }

    /// Reads one frame into `buf` (cleared and reused, so a steady-state
    /// reader recycles one allocation). Returns the payload length.
    ///
    /// The declared length is validated before any payload is read, and a
    /// short read reports the exact received count — the caller never sees
    /// a buffer that silently disagrees with its prefix.
    pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<usize, FrameReadError> {
        let mut prefix = [0u8; 4];
        // Hand-rolled read_exact for the prefix: zero bytes then EOF is a
        // clean close, EOF mid-prefix is a truncated (unknowable-length)
        // frame.
        let mut got = 0;
        while got < prefix.len() {
            match r.read(&mut prefix[got..]) {
                Ok(0) => {
                    if got == 0 {
                        return Err(FrameReadError::Closed);
                    }
                    return Err(FrameReadError::Truncated {
                        declared: 0,
                        received: got,
                    });
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameReadError::Io(e)),
            }
        }
        let declared = u32::from_le_bytes(prefix) as usize;
        if declared > MAX_FRAME_LEN {
            return Err(FrameReadError::Oversized {
                declared,
                max: MAX_FRAME_LEN,
            });
        }
        buf.clear();
        buf.resize(declared, 0);
        let mut received = 0;
        while received < declared {
            match r.read(&mut buf[received..]) {
                Ok(0) => {
                    return Err(FrameReadError::Truncated { declared, received });
                }
                Ok(n) => received += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameReadError::Io(e)),
            }
        }
        Ok(declared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let m = Message::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        let m = Message::from_bytes(vec![1, 2]);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert!(m.doors.is_empty());
    }

    #[test]
    fn framing_round_trip() {
        let mut wire = Vec::new();
        framing::write_frame(&mut wire, b"hello").unwrap();
        framing::write_frame(&mut wire, b"").unwrap();
        framing::write_frame(&mut wire, &[7u8; 1000]).unwrap();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert_eq!(framing::read_frame(&mut r, &mut buf).unwrap(), 5);
        assert_eq!(&buf[..], b"hello");
        assert_eq!(framing::read_frame(&mut r, &mut buf).unwrap(), 0);
        assert_eq!(framing::read_frame(&mut r, &mut buf).unwrap(), 1000);
        assert_eq!(buf, [7u8; 1000]);
        assert!(matches!(
            framing::read_frame(&mut r, &mut buf),
            Err(framing::FrameReadError::Closed)
        ));
    }

    #[test]
    fn framing_rejects_truncated_payload() {
        let mut wire = Vec::new();
        framing::write_frame(&mut wire, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        wire.truncate(wire.len() - 3); // cut the stream mid-payload
        let mut r = &wire[..];
        let mut buf = Vec::new();
        match framing::read_frame(&mut r, &mut buf) {
            Err(framing::FrameReadError::Truncated { declared, received }) => {
                assert_eq!(declared, 8);
                assert_eq!(received, 5);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn framing_rejects_truncated_prefix() {
        let wire = [42u8, 0]; // two of the four prefix bytes
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(matches!(
            framing::read_frame(&mut r, &mut buf),
            Err(framing::FrameReadError::Truncated { .. })
        ));
    }

    #[test]
    fn framing_rejects_oversized_declared_length() {
        let wire = u32::MAX.to_le_bytes();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        match framing::read_frame(&mut r, &mut buf) {
            Err(framing::FrameReadError::Oversized { declared, max }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(max, framing::MAX_FRAME_LEN);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // Nothing was allocated for the bogus length.
        assert!(buf.capacity() < framing::MAX_FRAME_LEN);
    }
}
