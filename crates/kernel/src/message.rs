//! The unit of transfer between domains.

use spring_trace::TraceCtx;

use crate::callid::CallId;
use crate::id::DoorId;

/// A message crossing a domain boundary: opaque bytes plus door identifiers.
///
/// Door identifiers are carried out-of-band from the byte payload, exactly as
/// in Spring: the kernel must see every identifier so it can translate it
/// into the receiving domain's door table. Marshalled byte streams reference
/// identifiers by their index in [`Message::doors`].
///
/// Transfer semantics: when a message is sent through a door call, every
/// identifier it carries is *moved* to the receiver — the sender's handle is
/// deleted and a fresh handle is issued in the receiving domain. A sender
/// that wants to retain access must copy the identifier first
/// ([`crate::Domain::copy_door`]), which is precisely the distinction the
/// paper draws between transmitting an object and copying it (§3.2).
#[derive(Debug, Default)]
pub struct Message {
    /// Opaque payload bytes (physically copied across the domain boundary).
    pub bytes: Vec<u8>,
    /// Door identifiers transferred with the message, in slot order.
    pub doors: Vec<DoorId>,
    /// Piggybacked trace context (16 bytes on the wire), carried in the
    /// envelope next to the out-of-band door identifiers — the same channel
    /// subcontracts use for their own dialogue (§5) — so propagation never
    /// touches the payload and stubs stay oblivious (§9.1).
    /// [`TraceCtx::NONE`] when tracing is disabled.
    pub trace: TraceCtx,
    /// Piggybacked call identity (20 bytes on the wire) for at-most-once
    /// invocation: retrying subcontracts stamp every attempt of one logical
    /// call with the same nonce so the server's reply cache can return the
    /// original reply instead of re-executing. [`CallId::NONE`] — the
    /// common case — costs nothing on the fast path.
    pub call: CallId,
}

impl Message {
    /// Creates an empty message.
    pub fn new() -> Self {
        Message::default()
    }

    /// Creates a message carrying only bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Message {
            bytes,
            ..Message::default()
        }
    }

    /// Total payload size in bytes (door identifiers are not counted; the
    /// kernel transfers them without copying payload).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns true when the byte payload is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let m = Message::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        let m = Message::from_bytes(vec![1, 2]);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert!(m.doors.is_empty());
    }
}
