//! Property tests for the log-linear histogram: its quantiles must track
//! the exact sorted-sample quantiles within the advertised relative-error
//! bound, for any mix of magnitudes.

use proptest::prelude::*;
use spring_trace::hist::SUB_BUCKETS;
use spring_trace::Histogram;

/// The exact `p`-quantile under the same convention the histogram uses:
/// the `ceil(n * p)`-th smallest sample (1-indexed), clamped to `[1, n]`.
fn exact_quantile(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = (((n as f64) * p).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Samples spanning the exact region, the log-linear region, and the
/// clamped microsecond/millisecond decades a latency histogram sees.
fn sample_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        64u64..4_096,
        4_096u64..1_000_000,
        1_000_000u64..10_000_000_000,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn percentiles_match_exact_quantiles_within_bounded_relative_error(
        samples in proptest::collection::vec(sample_strategy(), 1..400),
    ) {
        let hist = Histogram::default();
        for &s in &samples {
            hist.record(s);
        }
        let snap = hist.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        for &p in &[0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, p);
            let approx = snap.percentile_ns(p);
            // Never under-reports...
            prop_assert!(
                approx >= exact,
                "p={p}: approx {approx} < exact {exact} (n={})",
                sorted.len()
            );
            // ...and overshoots by at most one log-linear bucket width,
            // which is bounded by exact/SUB_BUCKETS (and is 0 for samples
            // in the exact region).
            let slack = exact / SUB_BUCKETS as u64;
            prop_assert!(
                approx <= exact + slack,
                "p={p}: approx {approx} > exact {exact} + {slack}"
            );
        }
        // The count/sum/max side stays exact.
        prop_assert_eq!(snap.count, sorted.len() as u64);
        prop_assert_eq!(snap.max_ns, *sorted.last().unwrap());
        prop_assert_eq!(snap.sum_ns, sorted.iter().sum::<u64>());
        prop_assert_eq!(snap.percentile_ns(1.0), snap.max_ns);
    }
}
