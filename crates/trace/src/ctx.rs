//! The propagated trace context: a 16-byte trace/span identifier pair.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// The identifier pair piggybacked on every traced message: which end-to-end
/// trace a message belongs to and which span is its immediate parent.
///
/// The all-zero value means "no context" ([`TraceCtx::NONE`]); identifier
/// allocation starts at 1 so the zero trace id is never issued. The pair
/// marshals to exactly 16 bytes ([`TraceCtx::to_bytes`]), the size quoted in
/// the wire-format description in DESIGN.md.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct TraceCtx {
    /// End-to-end trace identifier, shared by every span of one logical call.
    pub trace: u64,
    /// The span the carrying message was sent from (the parent for spans
    /// opened on the receiving side).
    pub span: u64,
}

impl TraceCtx {
    /// The absent context (all zeroes on the wire).
    pub const NONE: TraceCtx = TraceCtx { trace: 0, span: 0 };

    /// Returns true when this is the absent context.
    #[inline]
    pub fn is_none(self) -> bool {
        self.trace == 0
    }

    /// Returns true when this carries a real trace identifier.
    #[inline]
    pub fn is_some(self) -> bool {
        self.trace != 0
    }

    /// The 16-byte wire form (two little-endian `u64`s: trace, then span).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.trace.to_le_bytes());
        out[8..].copy_from_slice(&self.span.to_le_bytes());
        out
    }

    /// Rebuilds a context from its 16-byte wire form.
    pub fn from_bytes(raw: [u8; 16]) -> TraceCtx {
        TraceCtx {
            trace: u64::from_le_bytes(raw[..8].try_into().expect("8 bytes")),
            span: u64::from_le_bytes(raw[8..].try_into().expect("8 bytes")),
        }
    }
}

thread_local! {
    /// The context of the innermost open span on this thread. Door calls
    /// shuttle the caller's thread into the serving domain, so within one
    /// machine this cell alone would propagate correctly; the piggybacked
    /// message copy exists for the boundaries where the thread identity is
    /// not meaningful (the simulated network hop, and any future async
    /// delivery).
    static CURRENT: Cell<TraceCtx> = const { Cell::new(TraceCtx::NONE) };
}

/// The current thread's innermost open span context ([`TraceCtx::NONE`]
/// outside any span).
#[inline]
pub fn current() -> TraceCtx {
    CURRENT.with(|c| c.get())
}

/// Replaces the current context, returning the previous one (span machinery
/// only).
pub(crate) fn swap_current(ctx: TraceCtx) -> TraceCtx {
    CURRENT.with(|c| c.replace(ctx))
}

/// Process-wide identifier allocator. Deterministic (a counter, not a
/// random source) so tests can assert on orderings; uniqueness within the
/// process is all the simulated network needs.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh nonzero identifier (trace or span).
pub(crate) fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        let ctx = TraceCtx {
            trace: 0x0123_4567_89ab_cdef,
            span: 42,
        };
        assert_eq!(TraceCtx::from_bytes(ctx.to_bytes()), ctx);
        assert_eq!(ctx.to_bytes().len(), 16);
        assert_eq!(TraceCtx::from_bytes([0; 16]), TraceCtx::NONE);
    }

    #[test]
    fn none_is_none() {
        assert!(TraceCtx::NONE.is_none());
        assert!(!TraceCtx::NONE.is_some());
        assert!(TraceCtx { trace: 1, span: 0 }.is_some());
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
