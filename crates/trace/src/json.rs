//! A minimal JSON value type with a serializer.
//!
//! The workspace carries no external serialization dependency, so the trace
//! exporter and the benchmark harness share this hand-rolled value type.
//! Output is deterministic: object keys keep insertion order.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Numbers are emitted via `f64`; integers up to 2^53 round-trip
    /// exactly, which covers every counter and nanosecond duration the
    /// harness emits (ids larger than that are emitted as strings by the
    /// callers that need exactness).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes with two-space indentation and a trailing newline, the
    /// form written to `BENCH_*.json` files.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.pretty(), "null\n");
        assert_eq!(Json::Bool(true).pretty(), "true\n");
        assert_eq!(Json::from(42u64).pretty(), "42\n");
        assert_eq!(Json::from(1.5).pretty(), "1.5\n");
        assert_eq!(Json::from("a\"b\n").pretty(), "\"a\\\"b\\n\"\n");
    }

    #[test]
    fn nested_structure() {
        let v = Json::obj([
            ("name", Json::from("e1")),
            ("calls", Json::from(3u64)),
            ("tags", Json::Arr(vec![Json::from("a"), Json::from("b")])),
            ("empty", Json::Obj(vec![])),
        ]);
        let s = v.pretty();
        assert!(s.starts_with("{\n  \"name\": \"e1\""));
        assert!(s.contains("\"tags\": [\n    \"a\",\n    \"b\"\n  ]"));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn integers_have_no_fraction() {
        assert_eq!(Json::Num(1_000_000_000.0).pretty(), "1000000000\n");
    }
}
