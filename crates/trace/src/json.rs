//! A minimal JSON value type with a serializer and parser.
//!
//! The workspace carries no external serialization dependency, so the trace
//! exporter and the benchmark harness share this hand-rolled value type.
//! Output is deterministic: object keys keep insertion order. The parser
//! exists so the regression-compare tool can read back committed
//! `BENCH_*.json` baselines; it accepts exactly the subset the serializer
//! emits (plus standard number/escape forms).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Numbers are emitted via `f64`; integers up to 2^53 round-trip
    /// exactly, which covers every counter and nanosecond duration the
    /// harness emits (ids larger than that are emitted as strings by the
    /// callers that need exactness).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes with two-space indentation and a trailing newline, the
    /// form written to `BENCH_*.json` files.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document. Errors carry the byte offset where parsing
    /// failed.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Recursive-descent parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u at byte {}", self.pos))?;
                            // Surrogate pairs never appear in our output;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so bytes
                    // form valid sequences).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.pretty(), "null\n");
        assert_eq!(Json::Bool(true).pretty(), "true\n");
        assert_eq!(Json::from(42u64).pretty(), "42\n");
        assert_eq!(Json::from(1.5).pretty(), "1.5\n");
        assert_eq!(Json::from("a\"b\n").pretty(), "\"a\\\"b\\n\"\n");
    }

    #[test]
    fn nested_structure() {
        let v = Json::obj([
            ("name", Json::from("e1")),
            ("calls", Json::from(3u64)),
            ("tags", Json::Arr(vec![Json::from("a"), Json::from("b")])),
            ("empty", Json::Obj(vec![])),
        ]);
        let s = v.pretty();
        assert!(s.starts_with("{\n  \"name\": \"e1\""));
        assert!(s.contains("\"tags\": [\n    \"a\",\n    \"b\"\n  ]"));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn integers_have_no_fraction() {
        assert_eq!(Json::Num(1_000_000_000.0).pretty(), "1000000000\n");
    }

    #[test]
    fn parse_round_trips_serializer_output() {
        let v = Json::obj([
            ("name", Json::from("e14 \"quoted\"\n")),
            ("speedup", Json::from(7.36)),
            ("count", Json::from(48u64)),
            ("flag", Json::from(true)),
            ("nothing", Json::Null),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj([("a", Json::from(1u64))]),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn accessors_navigate_nested_values() {
        let v = Json::parse("{\"a\": {\"b\": [1, \"x\"]}}").unwrap();
        let arr = v.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(arr.as_arr().unwrap()[0].as_f64(), Some(1.0));
        assert_eq!(arr.as_arr().unwrap()[1].as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_f64(), None);
    }
}
