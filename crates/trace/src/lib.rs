//! Distributed tracing and per-mechanism metrics for the Spring
//! subcontract reproduction.
//!
//! The paper's central trick is that subcontracts piggyback their own
//! dialogue on the marshalled call stream (§5, §7). This crate rides the
//! same channel: a 16-byte trace/span identifier pair travels in the
//! message *envelope* — next to the out-of-band capability vector, exactly
//! where the kernel already carries data that is not payload — so a trace
//! context crosses domains, door calls, and simulated network hops with
//! zero changes to stubs or skeletons (the §9.1 stub-independence
//! invariant).
//!
//! Everything here is disabled by default. The enable flag is a single
//! relaxed atomic; every instrumentation site in the kernel and the
//! subcontract runtime checks it first, so the disabled fast path costs one
//! `Relaxed` load (~1 ns) and performs no allocation.
//!
//! Components:
//!
//! * [`TraceCtx`] — the propagated identifier pair ([`ctx`]).
//! * [`span_start`] / [`span_end`] / [`SpanGuard`] — the span API; completed
//!   spans are recorded into per-scope lock-free ring buffers ([`ring`]).
//! * [`hist`] — fixed log-linear (HDR-style) latency histograms keyed by
//!   (subcontract id | door token, operation); no allocation on the record
//!   path, exact p50/p90/p99/p999/max in snapshots.
//! * [`export`] — a human text tree dump and a JSON exporter ([`json`])
//!   used by the benchmark harness to emit `BENCH_*.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub mod ctx;
pub mod export;
pub mod hist;
pub mod json;
pub mod ring;
pub mod span;

pub use ctx::{current, TraceCtx};

/// Well-known span names.
///
/// Span keys are `&'static str` by design (the ring stores them without
/// allocation); these constants keep the producers in `spring-net` and the
/// assertions in tests/exporters spelling them identically.
pub mod keys {
    /// A proxy-door invocation being forwarded to its home node.
    pub const NET_FORWARD: &str = "net.forward";
    /// One simulated wire hop (latency, loss, accounting).
    pub const NET_HOP: &str = "net.hop";
    /// One batched flush over a link; `scid` carries the number of calls
    /// that shared the frame.
    pub const NET_BATCH: &str = "net.batch";
    /// One attempt of a pipelined invocation.
    pub const PIPELINE_ATTEMPT: &str = "pipeline.attempt";
}
pub use export::{histograms_json, render_text, span_forest, spans_json, SpanNode};
pub use hist::{histogram, record, snapshot_all, snapshot_of, HistSnapshot, Histogram};
pub use ring::{Event, Ring};
pub use span::{span_child_of, span_end, span_start, SpanGuard};

/// Global tracing switch. Off by default; all instrumentation sites check
/// this with one relaxed load before doing anything else.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Returns true when tracing is enabled (one relaxed atomic load).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off process-wide.
///
/// Spans already open keep recording to completion; new [`span_start`]
/// calls observe the flag immediately.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Process-wide monotonic clock origin, fixed at first use.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (monotonic).
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Clears all recorded spans and histograms (tests and benchmark deltas).
/// Does not touch the enable flag or any in-flight span.
pub fn reset() {
    ring::clear();
    hist::clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip() {
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
