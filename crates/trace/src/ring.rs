//! Per-scope lock-free event ring buffers.
//!
//! Each traced *scope* (a domain, tagged `node << 32 | domain`) gets its own
//! fixed-capacity ring. Writers never block: a slot index comes from one
//! `fetch_add` and the slot is published with a seqlock-style sequence
//! number, so concurrent door calls from many threads record without taking
//! any lock. The ring overwrites its oldest events when full — tracing is a
//! diagnostic window, not a reliable log — and readers detect and skip
//! slots that are mid-write.

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

/// Default ring capacity per scope (events, rounded up to a power of two).
pub const DEFAULT_CAPACITY: usize = 4096;

/// One completed span, recorded when the span ends.
#[derive(Clone, Copy, Debug, Default)]
pub struct Event {
    /// End-to-end trace identifier.
    pub trace: u64,
    /// This span's identifier.
    pub span: u64,
    /// Parent span identifier (0 for a root span).
    pub parent: u64,
    /// The scope (domain tag) the span executed in.
    pub scope: u64,
    /// Subcontract identifier or door token the span is keyed by (0: none).
    pub scid: u64,
    /// Operation key (`"invoke"`, `"door_call"`, `"net.hop"`, ...).
    pub key: &'static str,
    /// Start time, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// True when the span ended in failure (for example a dropped hop).
    pub failed: bool,
}

/// A slot: sequence number plus the event payload. Sequence protocol (with
/// `i` the monotonically increasing write index for the slot):
/// `2i + 1` while the writer is copying in, `2i + 2` once published. Readers
/// accept a slot only when they observe the same even sequence before and
/// after copying out.
struct Slot {
    seq: AtomicU64,
    ev: UnsafeCell<Event>,
}

/// A fixed-capacity, lock-free, overwrite-oldest event ring.
pub struct Ring {
    mask: u64,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

// SAFETY: slot payloads are raced deliberately; the sequence protocol makes
// readers discard any slot whose bytes may be torn, and `Event` is `Copy`
// with no interior pointers (the `&'static str` key is immutable).
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    /// Creates a ring holding `capacity` events (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> Ring {
        let cap = capacity.next_power_of_two().max(2);
        Ring {
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    ev: UnsafeCell::new(Event::default()),
                })
                .collect(),
        }
    }

    /// Records one event; never blocks, overwrites the oldest on wrap.
    pub fn record(&self, ev: Event) {
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(i & self.mask) as usize];
        slot.seq.store(2 * i + 1, Ordering::Release);
        // SAFETY: the odd sequence number marks the slot as mid-write; any
        // reader observing it discards the slot. A concurrent writer that
        // lapped the ring writes a larger sequence, which readers also use
        // to reject the torn value.
        unsafe { *slot.ev.get() = ev };
        slot.seq.store(2 * i + 2, Ordering::Release);
    }

    /// Number of events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Copies out every currently readable event, oldest first by start
    /// time. Slots being concurrently written are skipped.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue;
            }
            // SAFETY: the copy may race a writer; the re-check below rejects
            // the value unless the sequence was stable across the copy.
            let ev = unsafe { *slot.ev.get() };
            let after = slot.seq.load(Ordering::Acquire);
            if before == after {
                out.push(ev);
            }
        }
        out.sort_by_key(|e| (e.start_ns, e.span));
        out
    }
}

/// Scope id -> ring registry.
static RINGS: OnceLock<RwLock<HashMap<u64, Arc<Ring>>>> = OnceLock::new();

fn rings() -> &'static RwLock<HashMap<u64, Arc<Ring>>> {
    RINGS.get_or_init(|| RwLock::new(HashMap::new()))
}

/// The ring for `scope`, created at [`DEFAULT_CAPACITY`] on first use.
pub fn ring_for(scope: u64) -> Arc<Ring> {
    if let Some(r) = rings().read().get(&scope) {
        return Arc::clone(r);
    }
    Arc::clone(
        rings()
            .write()
            .entry(scope)
            .or_insert_with(|| Arc::new(Ring::new(DEFAULT_CAPACITY))),
    )
}

/// Records an event into its scope's ring.
pub fn record(ev: Event) {
    ring_for(ev.scope).record(ev);
}

/// Every scope that has a ring.
pub fn scopes() -> Vec<u64> {
    let mut s: Vec<u64> = rings().read().keys().copied().collect();
    s.sort_unstable();
    s
}

/// Snapshot of one scope's events (empty when the scope has no ring).
pub fn events_for(scope: u64) -> Vec<Event> {
    rings()
        .read()
        .get(&scope)
        .map(|r| r.snapshot())
        .unwrap_or_default()
}

/// Snapshot of every scope's events, merged and ordered by start time.
pub fn events() -> Vec<Event> {
    let rings: Vec<Arc<Ring>> = self::rings().read().values().cloned().collect();
    let mut out = Vec::new();
    for r in rings {
        out.extend(r.snapshot());
    }
    out.sort_by_key(|e| (e.start_ns, e.span));
    out
}

/// Drops every ring (fresh window for the next test or bench section).
pub fn clear() {
    rings().write().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let ring = Ring::new(8);
        for i in 0..3u64 {
            ring.record(Event {
                trace: 1,
                span: i + 1,
                start_ns: i,
                key: "t",
                ..Event::default()
            });
        }
        let evs = ring.snapshot();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].span, 1);
        assert_eq!(evs[2].span, 3);
        assert_eq!(ring.recorded(), 3);
    }

    #[test]
    fn overwrites_oldest_on_wrap() {
        let ring = Ring::new(4);
        for i in 0..10u64 {
            ring.record(Event {
                span: i,
                start_ns: i,
                ..Event::default()
            });
        }
        let evs = ring.snapshot();
        assert_eq!(evs.len(), 4);
        // Only the newest four survive.
        assert!(evs.iter().all(|e| e.span >= 6));
    }

    #[test]
    fn concurrent_writers_do_not_corrupt() {
        let ring = Arc::new(Ring::new(64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        ring.record(Event {
                            trace: t,
                            span: i,
                            key: "w",
                            ..Event::default()
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.recorded(), 4000);
        // Every surviving event must be internally consistent.
        for ev in ring.snapshot() {
            assert!(ev.trace < 4);
            assert!(ev.span < 1000);
            assert_eq!(ev.key, "w");
        }
    }
}
