//! The span API: `span_start` / `span_end` around any traced operation.
//!
//! A span is open from `span_start` to `span_end` (or the guard's drop).
//! While open it is the thread's *current* context — door calls shuttle the
//! caller's thread, so nesting falls out naturally — and at the end one
//! [`Event`] is recorded into the scope's ring buffer plus, when the span
//! carries a subcontract/door key, one sample into the matching latency
//! histogram.
//!
//! With tracing disabled, `span_start` is one relaxed atomic load returning
//! an inert guard: no clock read, no thread-local access, no allocation.

use crate::ctx::{self, TraceCtx};
use crate::ring::Event;
use crate::{hist, now_ns, ring};

/// RAII guard for one open span. Ends the span on drop; [`span_end`] (or
/// [`SpanGuard::end`]) makes the end point explicit.
#[must_use = "dropping the guard immediately ends the span"]
pub struct SpanGuard {
    ctx: TraceCtx,
    parent_span: u64,
    prev: TraceCtx,
    start_ns: u64,
    key: &'static str,
    scope: u64,
    scid: u64,
    failed: bool,
    armed: bool,
}

impl SpanGuard {
    /// The inert guard handed out while tracing is disabled.
    fn disarmed() -> SpanGuard {
        SpanGuard {
            ctx: TraceCtx::NONE,
            parent_span: 0,
            prev: TraceCtx::NONE,
            start_ns: 0,
            key: "",
            scope: 0,
            scid: 0,
            failed: false,
            armed: false,
        }
    }

    /// This span's context — what a message sent from inside the span
    /// should carry as its piggybacked header. [`TraceCtx::NONE`] when
    /// tracing is disabled.
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }

    /// Marks the span as failed (recorded in the event; a dropped network
    /// hop uses this so retries read as a failed sibling plus a successful
    /// one).
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Ends the span explicitly (equivalent to dropping the guard).
    pub fn end(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        ctx::swap_current(self.prev);
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        ring::record(Event {
            trace: self.ctx.trace,
            span: self.ctx.span,
            parent: self.parent_span,
            scope: self.scope,
            scid: self.scid,
            key: self.key,
            start_ns: self.start_ns,
            dur_ns,
            failed: self.failed,
        });
        if self.scid != 0 {
            hist::record(self.scid, self.key, dur_ns);
        }
    }
}

/// Opens a span as a child of the thread's current span (or as a new trace
/// root when there is none).
///
/// `scope` tags the domain the span executes in; `scid` keys the latency
/// histogram (a subcontract identifier or door token; 0 records no
/// histogram sample).
#[inline]
pub fn span_start(key: &'static str, scope: u64, scid: u64) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::disarmed();
    }
    span_open(key, ctx::current(), scope, scid)
}

/// Opens a span under an explicit parent — the receiving side of a
/// piggybacked context uses this with the pair read from the message
/// header. A `NONE` parent starts a fresh trace.
#[inline]
pub fn span_child_of(key: &'static str, parent: TraceCtx, scope: u64, scid: u64) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::disarmed();
    }
    span_open(key, parent, scope, scid)
}

fn span_open(key: &'static str, parent: TraceCtx, scope: u64, scid: u64) -> SpanGuard {
    let trace = if parent.is_none() {
        ctx::next_id()
    } else {
        parent.trace
    };
    let span_ctx = TraceCtx {
        trace,
        span: ctx::next_id(),
    };
    let prev = ctx::swap_current(span_ctx);
    SpanGuard {
        ctx: span_ctx,
        parent_span: parent.span,
        prev,
        start_ns: now_ns(),
        key,
        scope,
        scid,
        failed: false,
        armed: true,
    }
}

/// Ends a span (named counterpart to [`span_start`]; identical to dropping
/// the guard).
pub fn span_end(guard: SpanGuard) {
    drop(guard);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable flag is process-global and tests run concurrently within
    // this crate, so the span tests serialize on one lock.
    static GATE: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        let _g = GATE.lock();
        crate::reset();
        crate::set_enabled(true);
        let r = f();
        crate::set_enabled(false);
        crate::reset();
        r
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = GATE.lock();
        crate::set_enabled(false);
        let before = ring::events().len();
        let mut s = span_start("noop", 7, 7);
        assert!(s.ctx().is_none());
        s.fail();
        span_end(s);
        assert_eq!(ring::events().len(), before);
        assert!(ctx::current().is_none());
    }

    #[test]
    fn nesting_links_parent_and_restores_current() {
        with_tracing(|| {
            let outer = span_start("outer", 1, 0);
            let outer_ctx = outer.ctx();
            {
                let inner = span_start("inner", 1, 0);
                assert_eq!(inner.ctx().trace, outer_ctx.trace);
                assert_eq!(ctx::current(), inner.ctx());
            }
            assert_eq!(ctx::current(), outer_ctx);
            drop(outer);
            assert!(ctx::current().is_none());

            let evs = ring::events_for(1);
            assert_eq!(evs.len(), 2);
            let inner = evs.iter().find(|e| e.key == "inner").unwrap();
            let outer = evs.iter().find(|e| e.key == "outer").unwrap();
            assert_eq!(inner.parent, outer.span);
            assert_eq!(outer.parent, 0);
            assert_eq!(inner.trace, outer.trace);
        });
    }

    #[test]
    fn explicit_parent_continues_the_trace() {
        with_tracing(|| {
            let parent = TraceCtx {
                trace: 999_999,
                span: 123,
            };
            let child = span_child_of("remote", parent, 2, 0);
            assert_eq!(child.ctx().trace, 999_999);
            drop(child);
            let evs = ring::events_for(2);
            assert_eq!(evs[0].trace, 999_999);
            assert_eq!(evs[0].parent, 123);
        });
    }

    #[test]
    fn scid_spans_feed_histograms() {
        with_tracing(|| {
            drop(span_start("invoke", 3, 42));
            let snap = hist::histogram(42, "invoke").snapshot();
            assert_eq!(snap.count, 1);
        });
    }

    #[test]
    fn failed_flag_is_recorded() {
        with_tracing(|| {
            let mut s = span_start("hop", 4, 0);
            s.fail();
            drop(s);
            assert!(ring::events_for(4)[0].failed);
        });
    }
}
