//! Exporters: a human-readable span-tree dump and JSON forms of spans and
//! histograms (the benchmark harness writes the latter to `BENCH_*.json`).

use std::collections::HashMap;

use crate::hist;
use crate::json::Json;
use crate::ring::{self, Event};

/// One node of a reassembled span tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// The completed span.
    pub event: Event,
    /// Child spans, ordered by start time.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total spans in this subtree (including this one).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SpanNode::size).sum::<usize>()
    }

    /// Depth of the subtree (1 for a leaf).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(SpanNode::depth).max().unwrap_or(0)
    }
}

/// Reassembles every recorded span (across all scopes) into per-trace trees.
///
/// Roots are spans whose parent was never recorded — true roots, and spans
/// whose parent fell out of a wrapped ring. Within one trace the roots, and
/// every child list, are ordered by start time; the traces themselves come
/// out in first-seen order.
pub fn span_forest() -> Vec<(u64, Vec<SpanNode>)> {
    forest_of(ring::events())
}

/// Like [`span_forest`] but over an explicit event list (tests, or a caller
/// that filtered by scope first).
pub fn forest_of(events: Vec<Event>) -> Vec<(u64, Vec<SpanNode>)> {
    let recorded: std::collections::HashSet<u64> = events.iter().map(|e| e.span).collect();
    // span id -> children events, built oldest-first so child order holds.
    let mut children: HashMap<u64, Vec<Event>> = HashMap::new();
    let mut roots: Vec<Event> = Vec::new();
    for ev in events {
        if ev.parent != 0 && recorded.contains(&ev.parent) {
            children.entry(ev.parent).or_default().push(ev);
        } else {
            roots.push(ev);
        }
    }
    fn build(ev: Event, children: &mut HashMap<u64, Vec<Event>>) -> SpanNode {
        let kids = children.remove(&ev.span).unwrap_or_default();
        SpanNode {
            event: ev,
            children: kids.into_iter().map(|c| build(c, children)).collect(),
        }
    }
    let mut traces: Vec<(u64, Vec<SpanNode>)> = Vec::new();
    for root in roots {
        let trace = root.trace;
        let node = build(root, &mut children);
        match traces.iter_mut().find(|(t, _)| *t == trace) {
            Some((_, nodes)) => nodes.push(node),
            None => traces.push((trace, vec![node])),
        }
    }
    traces
}

/// Human-readable dump of every recorded trace as an indented tree, e.g.:
///
/// ```text
/// trace 17 (5 spans)
///   door_call scope=100000000 scid=0x2a 1840ns
///     simplex.serve scope=100000001 940ns
/// ```
pub fn render_text() -> String {
    let mut out = String::new();
    for (trace, roots) in span_forest() {
        let spans: usize = roots.iter().map(SpanNode::size).sum();
        out.push_str(&format!("trace {trace} ({spans} spans)\n"));
        for root in &roots {
            render_node(&mut out, root, 1);
        }
    }
    if out.is_empty() {
        out.push_str("(no recorded spans)\n");
    }
    out
}

fn render_node(out: &mut String, node: &SpanNode, depth: usize) {
    let ev = &node.event;
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&format!("{} scope={:x}", ev.key, ev.scope));
    if ev.scid != 0 {
        out.push_str(&format!(" scid={:#x}", ev.scid));
    }
    out.push_str(&format!(" {}ns", ev.dur_ns));
    if ev.failed {
        out.push_str(" FAILED");
    }
    out.push('\n');
    for child in &node.children {
        render_node(out, child, depth + 1);
    }
}

fn event_json(ev: &Event) -> Json {
    Json::obj([
        // Identifiers go out as strings so they round-trip exactly even
        // beyond 2^53.
        ("trace", Json::from(ev.trace.to_string())),
        ("span", Json::from(ev.span.to_string())),
        ("parent", Json::from(ev.parent.to_string())),
        ("scope", Json::from(format!("{:x}", ev.scope))),
        ("scid", Json::from(format!("{:x}", ev.scid))),
        ("key", Json::from(ev.key)),
        ("start_ns", Json::from(ev.start_ns)),
        ("dur_ns", Json::from(ev.dur_ns)),
        ("failed", Json::from(ev.failed)),
    ])
}

fn node_json(node: &SpanNode) -> Json {
    let Json::Obj(mut pairs) = event_json(&node.event) else {
        unreachable!("event_json returns an object");
    };
    pairs.push((
        "children".to_string(),
        Json::Arr(node.children.iter().map(node_json).collect()),
    ));
    Json::Obj(pairs)
}

/// Every recorded trace as JSON: an array of
/// `{"trace": ..., "roots": [span tree...]}` objects.
pub fn spans_json() -> Json {
    Json::Arr(
        span_forest()
            .iter()
            .map(|(trace, roots)| {
                Json::obj([
                    ("trace", Json::from(trace.to_string())),
                    ("roots", Json::Arr(roots.iter().map(node_json).collect())),
                ])
            })
            .collect(),
    )
}

/// Every latency histogram as JSON: an array of
/// `{"key": ..., "op": ..., "count": ..., "mean_ns": ..., "p50_ns": ...,
/// "p90_ns": ..., "p99_ns": ..., "p999_ns": ..., "max_ns": ...,
/// "buckets": [...]}` objects (plus the legacy `p99_bound_ns`). Trailing
/// empty buckets are trimmed.
pub fn histograms_json() -> Json {
    Json::Arr(
        hist::snapshot_all()
            .iter()
            .map(|(key, op, snap)| {
                let last = snap
                    .buckets
                    .iter()
                    .rposition(|&n| n != 0)
                    .map_or(0, |i| i + 1);
                #[allow(deprecated)]
                let p99_bound = snap.quantile_bound_ns(0.99);
                Json::obj([
                    ("key", Json::from(format!("{key:x}"))),
                    ("op", Json::from(*op)),
                    ("count", Json::from(snap.count)),
                    ("mean_ns", Json::from(snap.mean_ns())),
                    ("p50_ns", Json::from(snap.p50_ns())),
                    ("p90_ns", Json::from(snap.p90_ns())),
                    ("p99_ns", Json::from(snap.p99_ns())),
                    ("p999_ns", Json::from(snap.p999_ns())),
                    ("p99_bound_ns", Json::from(p99_bound)),
                    ("max_ns", Json::from(snap.max_ns)),
                    (
                        "buckets",
                        Json::Arr(
                            snap.buckets[..last]
                                .iter()
                                .map(|&n| Json::from(n))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// The spans reachable from traces that include span `span` — convenience
/// for tests that need "the tree containing this call".
pub fn trace_containing(span: u64) -> Option<(u64, Vec<SpanNode>)> {
    span_forest().into_iter().find(|(_, roots)| {
        fn contains(node: &SpanNode, span: u64) -> bool {
            node.event.span == span || node.children.iter().any(|c| contains(c, span))
        }
        roots.iter().any(|r| contains(r, span))
    })
}

/// All events belonging to one trace id, ordered by start time.
pub fn events_of_trace(trace: u64) -> Vec<Event> {
    ring::events()
        .into_iter()
        .filter(|e| e.trace == trace)
        .collect()
}

/// The most recently started trace id, if any span has been recorded.
pub fn latest_trace() -> Option<u64> {
    ring::events().last().map(|e| e.trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, span: u64, parent: u64, start: u64, key: &'static str) -> Event {
        Event {
            trace,
            span,
            parent,
            start_ns: start,
            key,
            ..Event::default()
        }
    }

    #[test]
    fn forest_links_parentage() {
        let forest = forest_of(vec![
            ev(1, 10, 0, 0, "root"),
            ev(1, 11, 10, 1, "mid"),
            ev(1, 12, 11, 2, "leaf"),
            ev(2, 20, 0, 3, "other"),
        ]);
        assert_eq!(forest.len(), 2);
        let (trace, roots) = &forest[0];
        assert_eq!(*trace, 1);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].size(), 3);
        assert_eq!(roots[0].depth(), 3);
        assert_eq!(roots[0].children[0].children[0].event.key, "leaf");
    }

    #[test]
    fn orphans_become_roots() {
        let forest = forest_of(vec![ev(1, 11, 999, 0, "orphan")]);
        assert_eq!(forest[0].1.len(), 1);
        assert_eq!(forest[0].1[0].event.key, "orphan");
    }

    #[test]
    fn text_and_json_render() {
        let mut failed = ev(1, 11, 10, 1, "hop");
        failed.failed = true;
        failed.scid = 0x2a;
        let nodes = forest_of(vec![ev(1, 10, 0, 0, "call"), failed]);
        let mut text = String::new();
        text.push_str(&format!("trace 1 ({} spans)\n", nodes[0].1[0].size()));
        render_node(&mut text, &nodes[0].1[0], 1);
        assert!(text.contains("call"));
        assert!(text.contains("FAILED"));
        assert!(text.contains("scid=0x2a"));

        let json = node_json(&nodes[0].1[0]).pretty();
        assert!(json.contains("\"key\": \"call\""));
        assert!(json.contains("\"key\": \"hop\""));
        assert!(json.contains("\"failed\": true"));
    }
}
