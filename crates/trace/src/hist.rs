//! Per-subcontract and per-door latency histograms.
//!
//! HDR-style log-linear buckets: each power of two is split into
//! [`SUB_BUCKETS`] linear sub-buckets, so recording is still one
//! `leading_zeros` plus one relaxed atomic increment — no allocation, no
//! lock on the hot path — but quantiles now come back with a bounded
//! relative error of `1/SUB_BUCKETS` (6.25%) instead of the old pure-log2
//! factor of two. Values below [`SUB_BUCKETS`]² are recorded exactly.
//! Histograms are keyed by `(key, op)` where `key` is a subcontract
//! identifier ([`ScId::raw`]-style 64-bit hash) or a kernel door token, and
//! `op` is the operation name (`"marshal"`, `"unmarshal"`, `"invoke"`,
//! `"door_call"`, `"openloop.call"`, ...). The two key spaces share one
//! registry; the op string keeps them apart.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

/// log2 of the linear sub-buckets per power of two.
pub const SUB_BITS: u32 = 4;

/// Linear sub-buckets per power of two: bounds quantile relative error at
/// `1/SUB_BUCKETS` = 6.25%.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// log2 of the histogram range: covers `[0 ns, 2^40 ns)` ≈ 18 minutes,
/// beyond any latency this system produces; larger samples clamp into the
/// last bucket.
pub const MAX_POW2: u32 = 40;

/// Total log-linear buckets.
pub const BUCKETS: usize = ((MAX_POW2 - SUB_BITS + 1) as usize) << SUB_BITS;

/// One latency histogram (fixed log-linear buckets plus count/sum/max).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// Log-linear bucket index for a nanosecond sample. Values below
/// [`SUB_BUCKETS`] map to their own bucket; above, the top [`SUB_BITS`]
/// bits after the leading one select a linear sub-bucket within the
/// sample's power of two.
fn bucket_of(ns: u64) -> usize {
    if ns < SUB_BUCKETS as u64 {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros();
    if msb >= MAX_POW2 {
        return BUCKETS - 1;
    }
    let shift = msb - SUB_BITS;
    let sub = ((ns >> shift) as usize) - SUB_BUCKETS;
    let row = (msb - SUB_BITS + 1) as usize;
    (row << SUB_BITS) + sub
}

/// Inclusive lower bound of bucket `i` in nanoseconds.
pub fn bucket_low(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        i as u64
    } else {
        let row = (i >> SUB_BITS) as u32;
        let sub = (i & (SUB_BUCKETS - 1)) as u64;
        (SUB_BUCKETS as u64 + sub) << (row - 1)
    }
}

/// Exclusive upper bound of bucket `i` in nanoseconds.
pub fn bucket_high(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        i as u64 + 1
    } else {
        let row = (i >> SUB_BITS) as u32;
        bucket_low(i) + (1u64 << (row - 1))
    }
}

impl Histogram {
    /// Records one sample (relaxed atomics only; no allocation).
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the counters.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Copy, Debug)]
pub struct HistSnapshot {
    /// Per-bucket sample counts; bucket bounds come from [`bucket_low`] /
    /// [`bucket_high`].
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Largest single sample in nanoseconds.
    pub max_ns: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl HistSnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Samples accounted for by the buckets themselves. Under concurrent
    /// recording a snapshot can tear (the `count` increment lands after the
    /// bucket's), so quantile walks use this sum, which by construction
    /// never runs past the last bucket.
    fn bucket_total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `p`-quantile in nanoseconds, `p` in `[0, 1]`; 0 when empty, and
    /// exactly [`HistSnapshot::max_ns`] at `p = 1.0`.
    ///
    /// The returned value is the highest nanosecond value that could have
    /// landed in the quantile's bucket, so it never under-reports: for a
    /// true quantile `q`, `q <= percentile_ns(p) <= q * (1 + 1/SUB_BUCKETS)`
    /// (exact below 2·[`SUB_BUCKETS`]²; see the property test). A NaN `p`
    /// is treated as 0.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        let total = self.bucket_total();
        if total == 0 {
            return 0;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        if p >= 1.0 {
            return self.max_ns;
        }
        let target = ((total as f64) * p).ceil() as u64;
        let target = target.clamp(1, total);
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // Highest representable value of the bucket, clamped by the
                // exactly-tracked maximum (which caps the top bucket).
                return (bucket_high(b) - 1).min(self.max_ns);
            }
        }
        // Unreachable: target <= total = sum of buckets.
        self.max_ns
    }

    /// Median in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(0.50)
    }

    /// 90th percentile in nanoseconds.
    pub fn p90_ns(&self) -> u64 {
        self.percentile_ns(0.90)
    }

    /// 99th percentile in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(0.99)
    }

    /// 99.9th percentile in nanoseconds.
    pub fn p999_ns(&self) -> u64 {
        self.percentile_ns(0.999)
    }

    /// Upper bound (exclusive) of the bucket containing the `p`-quantile.
    ///
    /// Retained as a shim for pre-log-linear callers; the bound is now a
    /// log-linear bucket edge (within 6.25% above the quantile) rather than
    /// the next power of two. Edge cases are pinned by unit tests: an empty
    /// histogram returns 0, `p = 1.0` returns a bound strictly above
    /// [`HistSnapshot::max_ns`] (clamped samples excepted), and `p` outside
    /// `[0, 1]` (or NaN) is clamped rather than walking off the buckets.
    #[deprecated(note = "use percentile_ns / p50_ns / p99_ns for exact log-linear quantiles")]
    pub fn quantile_bound_ns(&self, p: f64) -> u64 {
        let total = self.bucket_total();
        if total == 0 {
            return 0;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        let target = (((total as f64) * p).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_high(b);
            }
        }
        bucket_high(BUCKETS - 1)
    }
}

/// (key, op) -> histogram registry.
type Registry = RwLock<HashMap<(u64, &'static str), Arc<Histogram>>>;

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| RwLock::new(HashMap::new()))
}

/// The histogram for `(key, op)`, created on first use.
pub fn histogram(key: u64, op: &'static str) -> Arc<Histogram> {
    if let Some(h) = registry().read().get(&(key, op)) {
        return Arc::clone(h);
    }
    Arc::clone(
        registry()
            .write()
            .entry((key, op))
            .or_insert_with(|| Arc::new(Histogram::default())),
    )
}

/// Records one sample into the `(key, op)` histogram.
pub fn record(key: u64, op: &'static str, ns: u64) {
    histogram(key, op).record(ns);
}

/// Snapshot of the `(key, op)` histogram without creating it — what a
/// remote stats reader uses, where `op` arrives as wire data rather than a
/// `&'static str`.
pub fn snapshot_of(key: u64, op: &str) -> Option<HistSnapshot> {
    registry()
        .read()
        .iter()
        .find(|(&(k, o), _)| k == key && o == op)
        .map(|(_, h)| h.snapshot())
}

/// Snapshot of every histogram, ordered by key then op.
pub fn snapshot_all() -> Vec<(u64, &'static str, HistSnapshot)> {
    let mut out: Vec<(u64, &'static str, HistSnapshot)> = registry()
        .read()
        .iter()
        .map(|(&(key, op), h)| (key, op, h.snapshot()))
        .collect();
    out.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    out
}

/// Drops every histogram.
pub fn clear() {
    registry().write().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Exact region: one bucket per value below SUB_BUCKETS, and the
        // first linear row keeps that exactness up to 2*SUB_BUCKETS.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(15), 15);
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(31), 31);
        // Log-linear region: 32..64 shares 16 buckets of width 2.
        assert_eq!(bucket_of(32), 32);
        assert_eq!(bucket_of(33), 32);
        assert_eq!(bucket_of(34), 33);
        assert_eq!(bucket_of(63), 47);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_partition_the_range() {
        let mut expected_low = 0u64;
        for i in 0..BUCKETS {
            assert_eq!(bucket_low(i), expected_low, "bucket {i}");
            assert!(bucket_high(i) > bucket_low(i));
            expected_low = bucket_high(i);
        }
        assert_eq!(expected_low, 1u64 << MAX_POW2);
        // Every value lands in the bucket whose bounds contain it.
        for ns in [0u64, 1, 15, 16, 100, 1023, 1024, 123_456_789] {
            let b = bucket_of(ns);
            assert!(bucket_low(b) <= ns && ns < bucket_high(b), "ns={ns}");
        }
    }

    #[test]
    fn record_and_stats() {
        let h = Histogram::default();
        for ns in [1u64, 2, 4, 4, 1000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_ns, 1011);
        assert_eq!(s.max_ns, 1000);
        assert_eq!(s.mean_ns(), 202);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[4], 2);
        // Small samples are exact; 1000 lands in [992, 1024).
        assert_eq!(s.p50_ns(), 4);
        assert_eq!(s.percentile_ns(0.2), 1);
        let p = s.percentile_ns(0.95);
        assert!((1000..1024).contains(&p), "p95 = {p}");
        assert_eq!(s.percentile_ns(1.0), 1000);
    }

    #[test]
    fn percentile_edge_cases() {
        let empty = Histogram::default().snapshot();
        assert_eq!(empty.percentile_ns(0.99), 0);
        assert_eq!(empty.percentile_ns(1.0), 0);

        let h = Histogram::default();
        h.record(7);
        h.record(1_000_000);
        let s = h.snapshot();
        // Out-of-range and NaN quantiles clamp instead of misindexing.
        assert_eq!(s.percentile_ns(-3.0), 7);
        assert_eq!(s.percentile_ns(2.0), 1_000_000);
        assert_eq!(s.percentile_ns(f64::NAN), 7);
        // p = 1.0 is the exactly-tracked maximum, even though the sample
        // sits inside a ~6% wide bucket.
        assert_eq!(s.percentile_ns(1.0), 1_000_000);
    }

    #[test]
    #[allow(deprecated)]
    fn quantile_bound_shim_edge_cases() {
        let empty = Histogram::default().snapshot();
        assert_eq!(empty.quantile_bound_ns(1.0), 0);
        assert_eq!(empty.quantile_bound_ns(0.5), 0);

        let h = Histogram::default();
        for ns in [1u64, 2, 4, 4, 1000] {
            h.record(ns);
        }
        let s = h.snapshot();
        // Median falls in the exact bucket for 4: bound is 5.
        assert_eq!(s.quantile_bound_ns(0.5), 5);
        // The bound stays a strict upper bound of the max at p = 1.0...
        assert!(s.quantile_bound_ns(1.0) > s.max_ns);
        // ...within the log-linear width instead of the old factor of two.
        assert!(s.quantile_bound_ns(1.0) <= 1024);
        // Out-of-range quantiles clamp.
        assert_eq!(s.quantile_bound_ns(-1.0), s.quantile_bound_ns(0.0));
        assert_eq!(s.quantile_bound_ns(7.5), s.quantile_bound_ns(1.0));
        assert_eq!(s.quantile_bound_ns(f64::NAN), s.quantile_bound_ns(0.0));
    }

    #[test]
    #[allow(deprecated)]
    fn clamped_samples_stay_in_range() {
        let h = Histogram::default();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 1);
        // The quantile walk stays inside the table; the exact max is still
        // reported by percentile_ns(1.0).
        assert_eq!(s.quantile_bound_ns(1.0), 1u64 << MAX_POW2);
        assert_eq!(s.percentile_ns(1.0), u64::MAX);
        // Below p = 1.0 a clamped sample reports the table cap.
        assert_eq!(s.percentile_ns(0.5), (1u64 << MAX_POW2) - 1);
    }

    #[test]
    fn torn_snapshot_does_not_walk_off_the_end() {
        // Simulate a snapshot where `count` ran ahead of the buckets (the
        // recording thread was between the two increments).
        let h = Histogram::default();
        h.record(100);
        let mut s = h.snapshot();
        s.count += 1;
        let p = s.percentile_ns(1.0);
        assert_eq!(p, 100);
        assert!((100..107).contains(&s.percentile_ns(0.99)));
    }

    #[test]
    fn registry_round_trip() {
        record(0xfeed, "test_op_hist", 100);
        record(0xfeed, "test_op_hist", 200);
        let snap = histogram(0xfeed, "test_op_hist").snapshot();
        assert_eq!(snap.count, 2);
        assert!(snapshot_all()
            .iter()
            .any(|(k, op, _)| *k == 0xfeed && *op == "test_op_hist"));
        // Lookup by non-static string, without creating on miss.
        let by_name = snapshot_of(0xfeed, &String::from("test_op_hist")).unwrap();
        assert_eq!(by_name.count, 2);
        assert!(snapshot_of(0xfeed, "no_such_op_hist").is_none());
        assert!(!snapshot_all()
            .iter()
            .any(|(k, op, _)| *k == 0xfeed && *op == "no_such_op_hist"));
    }
}
