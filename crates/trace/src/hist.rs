//! Per-subcontract and per-door latency histograms.
//!
//! Fixed log2 buckets: bucket `b` holds samples with `ns` in
//! `[2^b, 2^(b+1))` (bucket 0 also takes 0 ns), so recording is a
//! `leading_zeros` plus one relaxed atomic increment — no allocation, no
//! lock on the hot path. Histograms are keyed by `(key, op)` where `key` is
//! a subcontract identifier ([`ScId::raw`]-style 64-bit hash) or a kernel
//! door token, and `op` is the operation name (`"marshal"`, `"unmarshal"`,
//! `"invoke"`, `"copy"`, `"consume"`, `"door_call"`, ...). The two key
//! spaces share one registry; the op string keeps them apart.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

/// Number of log2 buckets: covers `[1 ns, 2^40 ns)` ≈ 18 minutes, beyond
/// any latency this system produces; larger samples clamp into the last
/// bucket.
pub const BUCKETS: usize = 40;

/// One latency histogram (fixed log2 buckets plus count/sum/max).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// Log2 bucket index for a nanosecond sample.
fn bucket_of(ns: u64) -> usize {
    if ns <= 1 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

impl Histogram {
    /// Records one sample (relaxed atomics only; no allocation).
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the counters.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Copy, Debug)]
pub struct HistSnapshot {
    /// Per-bucket sample counts; bucket `b` covers `[2^b, 2^(b+1))` ns.
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Largest single sample in nanoseconds.
    pub max_ns: u64,
}

impl HistSnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (exclusive) of the bucket containing the `p`-quantile,
    /// `p` in `[0, 1]`. A log2 histogram answers quantiles to within 2x,
    /// which is what a regression tripwire needs.
    pub fn quantile_bound_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return 1u64 << (b + 1);
            }
        }
        1u64 << BUCKETS
    }
}

/// (key, op) -> histogram registry.
type Registry = RwLock<HashMap<(u64, &'static str), Arc<Histogram>>>;

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| RwLock::new(HashMap::new()))
}

/// The histogram for `(key, op)`, created on first use.
pub fn histogram(key: u64, op: &'static str) -> Arc<Histogram> {
    if let Some(h) = registry().read().get(&(key, op)) {
        return Arc::clone(h);
    }
    Arc::clone(
        registry()
            .write()
            .entry((key, op))
            .or_insert_with(|| Arc::new(Histogram::default())),
    )
}

/// Records one sample into the `(key, op)` histogram.
pub fn record(key: u64, op: &'static str, ns: u64) {
    histogram(key, op).record(ns);
}

/// Snapshot of every histogram, ordered by key then op.
pub fn snapshot_all() -> Vec<(u64, &'static str, HistSnapshot)> {
    let mut out: Vec<(u64, &'static str, HistSnapshot)> = registry()
        .read()
        .iter()
        .map(|(&(key, op), h)| (key, op, h.snapshot()))
        .collect();
    out.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    out
}

/// Drops every histogram.
pub fn clear() {
    registry().write().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn record_and_stats() {
        let h = Histogram::default();
        for ns in [1u64, 2, 4, 4, 1000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_ns, 1011);
        assert_eq!(s.max_ns, 1000);
        assert_eq!(s.mean_ns(), 202);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[9], 1);
        // Median falls in the 4-ns bucket: bound is 8.
        assert_eq!(s.quantile_bound_ns(0.5), 8);
        assert_eq!(s.quantile_bound_ns(1.0), 1 << 10);
    }

    #[test]
    fn registry_round_trip() {
        record(0xfeed, "test_op_hist", 100);
        record(0xfeed, "test_op_hist", 200);
        let snap = histogram(0xfeed, "test_op_hist").snapshot();
        assert_eq!(snap.count, 2);
        assert!(snapshot_all()
            .iter()
            .any(|(k, op, _)| *k == 0xfeed && *op == "test_op_hist"));
    }
}
