//! The bootstrap registry: a door-level name-to-object table for the first
//! exchange between freshly connected OS processes.
//!
//! A process that dials another holds exactly one identifier to begin with:
//! the proxy for the peer's advertised bootstrap door (carried in the
//! socket HELLO). Everything else must be fetched *through* that door, so
//! its protocol cannot assume any subcontract machinery on the far side —
//! the registry speaks plain [`spring_kernel::Message`]s, storing each
//! registered object in marshalled form (bytes plus the doors its slots
//! reference) and handing out copies on lookup. Once a client has pulled a
//! typed object out of the registry (a naming context, a file system, an
//! append log), ordinary subcontract-level calls take over.
//!
//! The same servant works over the simulated backend, so single-process
//! tests exercise the identical handshake path.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use spring_buf::CommBuffer;
use spring_kernel::{CallCtx, Domain, DoorError, DoorHandler, DoorId, Message};
use subcontract::{unmarshal_object, DomainCtx, Result, SpringError, SpringObj, TypeInfo};

/// Registers (or replaces) an object under a name.
const OP_REGISTER: u32 = 1;
/// Fetches a copy of the object registered under a name.
const OP_LOOKUP: u32 = 2;
/// Lists the registered names, sorted.
const OP_LIST: u32 = 3;

/// One stored object: its marshalled bytes plus the door identifiers the
/// byte stream's slots reference, owned by the servant's domain.
struct Entry {
    bytes: Vec<u8>,
    doors: Vec<DoorId>,
}

/// The serving side of the bootstrap registry.
///
/// Create it with [`RegistryServant::publish`], which also exports its door
/// and is typically followed by `Network::set_bootstrap` so the door is
/// advertised in the socket handshake.
pub struct RegistryServant {
    domain: Domain,
    entries: Mutex<HashMap<String, Entry>>,
}

impl RegistryServant {
    /// Creates the servant in `domain` and returns it with a door
    /// identifier for it (owned by `domain`).
    pub fn publish(domain: &Domain) -> std::result::Result<(Arc<Self>, DoorId), DoorError> {
        let servant = Arc::new(RegistryServant {
            domain: domain.clone(),
            entries: Mutex::new(HashMap::new()),
        });
        let door = domain.create_door(servant.clone())?;
        Ok((servant, door))
    }

    /// Registers `obj` (marshalled in copy mode; the caller keeps it) under
    /// `name` directly, without going through the door — for the process
    /// that owns the registry.
    pub fn register_local(&self, name: &str, obj: &SpringObj) -> Result<()> {
        let mut buf = CommBuffer::new();
        obj.marshal_copy(&mut buf)?;
        let msg = buf.into_message();
        // The marshalled identifiers are owned by the object's domain; the
        // entry must own them in *ours* so later lookups can copy them out.
        let from = obj.ctx().domain().clone();
        let mut moved = Vec::with_capacity(msg.doors.len());
        for d in msg.doors {
            match from.transfer_door(d, &self.domain) {
                Ok(m) => moved.push(m),
                Err(e) => {
                    for m in moved {
                        let _ = self.domain.delete_door(m);
                    }
                    return Err(e.into());
                }
            }
        }
        self.store(name.to_owned(), msg.bytes, moved);
        Ok(())
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.lock().keys().cloned().collect();
        names.sort();
        names
    }

    fn store(&self, name: String, bytes: Vec<u8>, doors: Vec<DoorId>) {
        let old = self.entries.lock().insert(name, Entry { bytes, doors });
        if let Some(old) = old {
            // The replaced object's doors would otherwise stay pinned in
            // the servant's domain forever.
            for d in old.doors {
                let _ = self.domain.delete_door(d);
            }
        }
    }

    fn reply_err(why: String) -> Message {
        let mut reply = CommBuffer::new();
        reply.put_bool(false);
        reply.put_string(&why);
        reply.into_message()
    }

    fn handle(&self, msg: Message) -> std::result::Result<Message, DoorError> {
        // The doors ride at the message level; the byte stream references
        // them by slot index. Detach them before parsing so a register
        // stores exactly the capability vector the object marshalled.
        let mut msg = msg;
        let mut doors = std::mem::take(&mut msg.doors);
        let mut args = CommBuffer::from_message(msg);
        let bad = |e: spring_buf::BufError| DoorError::Handler(format!("bad registry call: {e}"));
        let op = args.get_u32().map_err(bad)?;
        if op != OP_REGISTER {
            // Only a register consumes carried identifiers; stray doors on
            // any other op would otherwise sit in our domain forever.
            for d in doors.drain(..) {
                let _ = self.domain.delete_door(d);
            }
        }
        match op {
            OP_REGISTER => {
                let name = args.get_string().map_err(bad)?;
                let bytes = args.get_bytes().map_err(bad)?;
                self.store(name, bytes, doors);
                let mut reply = CommBuffer::new();
                reply.put_bool(true);
                Ok(reply.into_message())
            }
            OP_LOOKUP => {
                let name = args.get_string().map_err(bad)?;
                let entries = self.entries.lock();
                let Some(entry) = entries.get(&name) else {
                    return Ok(Self::reply_err(format!("no such name {name:?}")));
                };
                // Hand out a copy: the stored identifiers stay behind for
                // the next lookup.
                let mut copies = Vec::with_capacity(entry.doors.len());
                for &d in &entry.doors {
                    match self.domain.copy_door(d) {
                        Ok(c) => copies.push(c),
                        Err(e) => {
                            for c in copies {
                                let _ = self.domain.delete_door(c);
                            }
                            return Err(e);
                        }
                    }
                }
                let mut reply = CommBuffer::new();
                reply.put_bool(true);
                reply.put_bytes(&entry.bytes);
                let mut out = reply.into_message();
                out.doors = copies;
                Ok(out)
            }
            OP_LIST => {
                let names = self.names();
                let mut reply = CommBuffer::new();
                reply.put_bool(true);
                reply.put_seq_len(names.len());
                for n in &names {
                    reply.put_string(n);
                }
                Ok(reply.into_message())
            }
            other => Ok(Self::reply_err(format!("unknown registry op {other}"))),
        }
    }
}

impl DoorHandler for RegistryServant {
    fn invoke(&self, ctx: &CallCtx, msg: Message) -> std::result::Result<Message, DoorError> {
        // `Network::set_bootstrap` transfers the registry door into the
        // network server's domain, so over a socket the delivered
        // identifiers land *there*, not in the servant's own domain. Move
        // them in (and reply identifiers back out) so stored entries are
        // owned by one stable domain regardless of which domain serves the
        // door.
        let mut msg = msg;
        let foreign_serve = ctx.server.id() != self.domain.id();
        if foreign_serve {
            let mut moved = Vec::with_capacity(msg.doors.len());
            for d in std::mem::take(&mut msg.doors) {
                match ctx.server.transfer_door(d, &self.domain) {
                    Ok(m) => moved.push(m),
                    Err(e) => {
                        for m in moved {
                            let _ = self.domain.delete_door(m);
                        }
                        return Err(e);
                    }
                }
            }
            msg.doors = moved;
        }
        // A failed register must not strand the identifiers that landed in
        // our domain: `handle` either stores them or they are deleted here.
        let door_snapshot = msg.doors.clone();
        match self.handle(msg) {
            Ok(mut reply) => {
                if foreign_serve {
                    let mut out = Vec::with_capacity(reply.doors.len());
                    for d in std::mem::take(&mut reply.doors) {
                        match self.domain.transfer_door(d, &ctx.server) {
                            Ok(m) => out.push(m),
                            Err(e) => {
                                for m in out {
                                    let _ = ctx.server.delete_door(m);
                                }
                                return Err(e);
                            }
                        }
                    }
                    reply.doors = out;
                }
                Ok(reply)
            }
            Err(e) => {
                for d in door_snapshot {
                    let _ = self.domain.delete_door(d);
                }
                Err(e)
            }
        }
    }
}

/// The client side: speaks the registry protocol through any door — a
/// local one, a simulated proxy, or a socket proxy obtained from
/// `SocketPeer::bootstrap_door`.
pub struct RegistryClient {
    ctx: Arc<DomainCtx>,
    door: DoorId,
}

impl RegistryClient {
    /// Wraps a registry door owned by `ctx`'s domain.
    pub fn new(ctx: Arc<DomainCtx>, door: DoorId) -> RegistryClient {
        RegistryClient { ctx, door }
    }

    fn call(&self, args: CommBuffer) -> Result<(CommBuffer, Vec<DoorId>)> {
        let mut reply = self.ctx.domain().call(self.door, args.into_message())?;
        let doors = std::mem::take(&mut reply.doors);
        let mut buf = CommBuffer::from_message(reply);
        if buf.get_bool()? {
            return Ok((buf, doors));
        }
        let why = buf.get_string()?;
        // A failed call carries no object, but guard against stray doors
        // anyway — dropping identifiers undeleted leaks them.
        for d in doors {
            let _ = self.ctx.domain().delete_door(d);
        }
        Err(SpringError::ResolveFailed(why))
    }

    /// Registers a copy of `obj` under `name` (the caller keeps the
    /// original), replacing any existing binding.
    pub fn register(&self, name: &str, obj: &SpringObj) -> Result<()> {
        let mut marshalled = CommBuffer::new();
        obj.marshal_copy(&mut marshalled)?;
        let omsg = marshalled.into_message();
        let mut args = CommBuffer::new();
        args.put_u32(OP_REGISTER);
        args.put_string(name);
        args.put_bytes(&omsg.bytes);
        let mut msg = args.into_message();
        msg.doors = omsg.doors;
        let mut reply = self.ctx.domain().call(self.door, msg)?;
        let doors = std::mem::take(&mut reply.doors);
        for d in doors {
            let _ = self.ctx.domain().delete_door(d);
        }
        let mut buf = CommBuffer::from_message(reply);
        if buf.get_bool()? {
            Ok(())
        } else {
            Err(SpringError::ResolveFailed(buf.get_string()?))
        }
    }

    /// Fetches a copy of the object registered under `name`, unmarshalled
    /// at the expected type. Over a socket proxy, the object's doors arrive
    /// as proxy doors into the owning process.
    pub fn lookup(&self, name: &str, expected: &'static TypeInfo) -> Result<SpringObj> {
        let mut args = CommBuffer::new();
        args.put_u32(OP_LOOKUP);
        args.put_string(name);
        let (mut buf, doors) = self.call(args)?;
        let bytes = buf.get_bytes()?;
        let mut obj_buf = CommBuffer::from_message(Message {
            bytes,
            doors,
            ..Message::default()
        });
        unmarshal_object(&self.ctx, expected, &mut obj_buf)
    }

    /// Lists the registered names, sorted.
    pub fn list(&self) -> Result<Vec<String>> {
        let mut args = CommBuffer::new();
        args.put_u32(OP_LIST);
        let (mut buf, _doors) = self.call(args)?;
        let n = buf.get_seq_len(4)?;
        let mut names = Vec::with_capacity(n);
        for _ in 0..n {
            names.push(buf.get_string()?);
        }
        Ok(names)
    }
}
