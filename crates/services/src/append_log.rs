//! A deliberately non-idempotent append-log service.
//!
//! The at-most-once machinery (call identity + server reply cache) exists
//! for exactly this shape of operation: `append` applies its payload
//! unconditionally, so executing a retried attempt twice is observable as
//! two log entries. The servant counts every application on the server
//! side ([`AppendLogState::applied`]), which is what the fault-injection
//! suite compares against the client's view of successful calls.
//!
//! The state is shared (`Arc`) so a replica group can serve one log from
//! several servant instances — standing in for the state synchronization
//! the paper requires replicated servers to perform themselves.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use spring_buf::CommBuffer;
use subcontract::{
    decode_reply_status, encode_ok, op_hash, Dispatch, ReplyStatus, Result, ServerCtx, SpringError,
    SpringObj, TypeInfo, OBJECT_TYPE,
};

/// Run-time type of append-log objects.
pub static APPEND_LOG_TYPE: TypeInfo = TypeInfo {
    name: "append_log",
    parents: &[&OBJECT_TYPE],
    default_subcontract: spring_subcontracts::Singleton::ID,
};

/// Appends one entry; returns the log length after the append.
pub const OP_APPEND: u32 = op_hash("append");
/// Returns the number of entries.
pub const OP_LEN: u32 = op_hash("len");

/// The log itself: entries plus a server-side application counter.
#[derive(Debug, Default)]
pub struct AppendLogState {
    entries: Mutex<Vec<u64>>,
    applied: AtomicU64,
}

impl AppendLogState {
    /// Creates an empty shared log.
    pub fn new() -> Arc<AppendLogState> {
        Arc::new(AppendLogState::default())
    }

    /// How many appends have *executed* on the server — the ground truth
    /// the exactly-once suite checks client observations against.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Snapshot of the entries, in application order.
    pub fn entries(&self) -> Vec<u64> {
        self.entries.lock().clone()
    }
}

/// Servant dispatching the append-log operations over a shared state.
pub struct AppendLogServant {
    state: Arc<AppendLogState>,
}

impl AppendLogServant {
    /// Creates a servant over the given (possibly shared) log state.
    pub fn new(state: Arc<AppendLogState>) -> Arc<AppendLogServant> {
        Arc::new(AppendLogServant { state })
    }
}

impl Dispatch for AppendLogServant {
    fn type_info(&self) -> &'static TypeInfo {
        &APPEND_LOG_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        match op {
            x if x == OP_APPEND => {
                let value = args.get_u64()?;
                let mut entries = self.state.entries.lock();
                entries.push(value);
                let len = entries.len() as u64;
                drop(entries);
                self.state.applied.fetch_add(1, Ordering::Relaxed);
                encode_ok(reply);
                reply.put_u64(len);
                Ok(())
            }
            x if x == OP_LEN => {
                encode_ok(reply);
                reply.put_u64(self.state.entries.lock().len() as u64);
                Ok(())
            }
            other => Err(SpringError::UnknownOp(other)),
        }
    }
}

/// Typed convenience wrapper playing the role of generated stubs.
pub struct AppendLogClient(pub SpringObj);

impl AppendLogClient {
    /// Appends `value`; returns the log length after the append.
    pub fn append(&self, value: u64) -> Result<u64> {
        let mut call = self.0.start_call(OP_APPEND)?;
        call.put_u64(value);
        let mut reply = self.0.invoke(call)?;
        expect_ok(&mut reply)?;
        Ok(reply.get_u64()?)
    }

    /// The current number of entries.
    pub fn len(&self) -> Result<u64> {
        let call = self.0.start_call(OP_LEN)?;
        let mut reply = self.0.invoke(call)?;
        expect_ok(&mut reply)?;
        Ok(reply.get_u64()?)
    }

    /// True when the log has no entries.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

fn expect_ok(reply: &mut CommBuffer) -> Result<()> {
    match decode_reply_status(reply)? {
        ReplyStatus::Ok => Ok(()),
        ReplyStatus::UserException(name) => Err(SpringError::UnknownUserException(name)),
    }
}
