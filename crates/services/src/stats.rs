//! A live observability door: kernel counters and latency percentiles as a
//! Spring service.
//!
//! The benchmark harness reads kernel counters and trace histograms
//! in-process; this servant exports the same numbers through the ordinary
//! subcontract machinery, so *any* client — same domain, another domain,
//! or across a `spring-net` link — can door-call for a consistent snapshot
//! while load is running. Nothing here is special-cased: the stats door is
//! a singleton object like every other service, which is exactly the
//! paper's point about uniform object invocation (§4).
//!
//! Wire format choices favor forward compatibility over compactness:
//! kernel counters travel as `(name, value)` pairs with an explicit count,
//! so clients keep working when a counter is added, and histogram
//! summaries carry explicit percentile fields rather than raw buckets.

use std::sync::Arc;

use spring_buf::CommBuffer;
use spring_kernel::Kernel;
use subcontract::{
    decode_reply_status, encode_ok, op_hash, Dispatch, ReplyStatus, Result, ServerCtx, SpringError,
    SpringObj, TypeInfo, OBJECT_TYPE,
};

/// Run-time type of stats objects.
pub static STATS_TYPE: TypeInfo = TypeInfo {
    name: "stats",
    parents: &[&OBJECT_TYPE],
    default_subcontract: spring_subcontracts::Singleton::ID,
};

/// Returns the kernel counter snapshot as `(name, value)` pairs.
pub const OP_KERNEL_STATS: u32 = op_hash("kernel_stats");
/// Lists the registered latency histograms as `(key, op, count)` rows.
pub const OP_HIST_LIST: u32 = op_hash("hist_list");
/// Returns the percentile summary of one histogram, looked up by
/// `(key, op)`; fails with a user exception when no such histogram exists.
pub const OP_HIST_SUMMARY: u32 = op_hash("hist_summary");

/// User exception raised by [`OP_HIST_SUMMARY`] for an unknown histogram.
pub const EXN_NO_SUCH_HIST: &str = "no_such_histogram";

/// Percentile summary of one latency histogram, as read through the door.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Largest single sample in nanoseconds.
    pub max_ns: u64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile latency in nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile latency in nanoseconds.
    pub p999_ns: u64,
}

/// Servant answering stats queries against one kernel plus the process-wide
/// trace histogram registry.
pub struct StatsServant {
    kernel: Kernel,
}

impl StatsServant {
    /// Creates a servant reporting on the given kernel.
    pub fn new(kernel: Kernel) -> Arc<StatsServant> {
        Arc::new(StatsServant { kernel })
    }
}

impl Dispatch for StatsServant {
    fn type_info(&self) -> &'static TypeInfo {
        &STATS_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        match op {
            x if x == OP_KERNEL_STATS => {
                let s = self.kernel.stats();
                let pairs: &[(&str, u64)] = &[
                    ("doors_created", s.doors_created),
                    ("door_calls", s.door_calls),
                    ("bytes_copied", s.bytes_copied),
                    ("local_deliveries", s.local_deliveries),
                    ("ids_issued", s.ids_issued),
                    ("ids_deleted", s.ids_deleted),
                    ("ids_transferred", s.ids_transferred),
                    ("unref_notifications", s.unref_notifications),
                    ("revocations", s.revocations),
                    ("table_lock_waits", s.table_lock_waits),
                    ("shard_lock_waits", s.shard_lock_waits),
                    ("pool_hits", s.pool_hits),
                    ("pool_misses", s.pool_misses),
                ];
                encode_ok(reply);
                reply.put_u32(pairs.len() as u32);
                for (name, value) in pairs {
                    reply.put_string(name);
                    reply.put_u64(*value);
                }
                Ok(())
            }
            x if x == OP_HIST_LIST => {
                let all = spring_trace::snapshot_all();
                encode_ok(reply);
                reply.put_u32(all.len() as u32);
                for (key, op_name, snap) in all {
                    reply.put_u64(key);
                    reply.put_string(op_name);
                    reply.put_u64(snap.count);
                }
                Ok(())
            }
            x if x == OP_HIST_SUMMARY => {
                let key = args.get_u64()?;
                let op_name = args.get_string()?;
                match spring_trace::snapshot_of(key, &op_name) {
                    Some(snap) => {
                        encode_ok(reply);
                        reply.put_u64(snap.count);
                        reply.put_u64(snap.sum_ns);
                        reply.put_u64(snap.max_ns);
                        reply.put_u64(snap.p50_ns());
                        reply.put_u64(snap.p90_ns());
                        reply.put_u64(snap.p99_ns());
                        reply.put_u64(snap.p999_ns());
                    }
                    None => {
                        subcontract::encode_user_exception(reply, EXN_NO_SUCH_HIST);
                        reply.put_u64(key);
                        reply.put_string(&op_name);
                    }
                }
                Ok(())
            }
            other => Err(SpringError::UnknownOp(other)),
        }
    }
}

/// Typed convenience wrapper playing the role of generated stubs.
pub struct StatsClient(pub SpringObj);

impl StatsClient {
    /// Reads the kernel counter snapshot as `(name, value)` pairs, in the
    /// order the server defines them.
    pub fn kernel_stats(&self) -> Result<Vec<(String, u64)>> {
        let call = self.0.start_call(OP_KERNEL_STATS)?;
        let mut reply = self.0.invoke(call)?;
        expect_ok(&mut reply)?;
        let n = reply.get_u32()?;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name = reply.get_string()?;
            let value = reply.get_u64()?;
            out.push((name, value));
        }
        Ok(out)
    }

    /// Lists the server's registered histograms as `(key, op, count)` rows.
    pub fn hist_list(&self) -> Result<Vec<(u64, String, u64)>> {
        let call = self.0.start_call(OP_HIST_LIST)?;
        let mut reply = self.0.invoke(call)?;
        expect_ok(&mut reply)?;
        let n = reply.get_u32()?;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let key = reply.get_u64()?;
            let op = reply.get_string()?;
            let count = reply.get_u64()?;
            out.push((key, op, count));
        }
        Ok(out)
    }

    /// Reads the percentile summary of the histogram registered under
    /// `(key, op)`; `Ok(None)` when the server has no such histogram.
    pub fn hist_summary(&self, key: u64, op: &str) -> Result<Option<HistSummary>> {
        let mut call = self.0.start_call(OP_HIST_SUMMARY)?;
        call.put_u64(key);
        call.put_string(op);
        let mut reply = self.0.invoke(call)?;
        match decode_reply_status(&mut reply)? {
            ReplyStatus::Ok => Ok(Some(HistSummary {
                count: reply.get_u64()?,
                sum_ns: reply.get_u64()?,
                max_ns: reply.get_u64()?,
                p50_ns: reply.get_u64()?,
                p90_ns: reply.get_u64()?,
                p99_ns: reply.get_u64()?,
                p999_ns: reply.get_u64()?,
            })),
            ReplyStatus::UserException(name) if name == EXN_NO_SUCH_HIST => Ok(None),
            ReplyStatus::UserException(name) => Err(SpringError::UnknownUserException(name)),
        }
    }
}

fn expect_ok(reply: &mut CommBuffer) -> Result<()> {
    match decode_reply_status(reply)? {
        ReplyStatus::Ok => Ok(()),
        ReplyStatus::UserException(name) => Err(SpringError::UnknownUserException(name)),
    }
}
