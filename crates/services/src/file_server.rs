//! An in-memory file server: the running example of the paper (§7).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use spring_subcontracts::{Caching, CoherentStats, Simplex};
use subcontract::{DomainCtx, Result, ServerSubcontract, SpringObj};

use crate::idl::fs;

/// Shorthand for the generated `io_error` exception.
pub type FsError = fs::IoError;

fn io_err(reason: impl Into<String>) -> fs::FileError {
    fs::FileError::IoError(fs::IoError {
        reason: reason.into(),
    })
}

fn io_err_fs(reason: impl Into<String>) -> fs::FileSystemError {
    fs::FileSystemError::IoError(fs::IoError {
        reason: reason.into(),
    })
}

/// One file's state.
#[derive(Debug, Default)]
struct FileNode {
    content: Vec<u8>,
    version: u64,
}

/// The shared store behind one file server.
#[derive(Debug, Default)]
struct Store {
    files: RwLock<HashMap<String, Arc<Mutex<FileNode>>>>,
}

impl Store {
    fn get(&self, name: &str) -> Option<Arc<Mutex<FileNode>>> {
        self.files.read().get(name).cloned()
    }
}

/// The in-memory file server: exports a `file_system` object plus per-file
/// `file` / `cacheable_file` objects.
pub struct FileServer {
    ctx: Arc<DomainCtx>,
    store: Arc<Store>,
    manager_name: String,
}

impl FileServer {
    /// Creates a file server in `ctx`'s domain. `manager_name` is the
    /// machine-local name clients' caching subcontract resolves (§8.2).
    pub fn new(ctx: &Arc<DomainCtx>, manager_name: impl Into<String>) -> Arc<FileServer> {
        crate::register_fs_types(ctx);
        Arc::new(FileServer {
            ctx: ctx.clone(),
            store: Arc::new(Store::default()),
            manager_name: manager_name.into(),
        })
    }

    /// Creates a file with initial contents (server-side convenience).
    pub fn put(&self, name: &str, content: &[u8]) {
        let node = Arc::new(Mutex::new(FileNode {
            content: content.to_vec(),
            version: 1,
        }));
        self.store.files.write().insert(name.to_owned(), node);
    }

    /// Exports the `file_system` object (via simplex).
    pub fn export_fs(self: &Arc<Self>) -> Result<fs::FileSystem> {
        let skel = fs::FileSystemSkeleton::new(Arc::new(FsServant {
            server: self.clone(),
        }));
        let obj = Simplex.export(&self.ctx, skel)?;
        fs::FileSystem::from_obj(obj)
    }

    /// Exports one file as a plain `file` object (singleton-style simplex).
    pub fn export_file(self: &Arc<Self>, name: &str) -> Result<SpringObj> {
        let node = self
            .store
            .get(name)
            .ok_or(subcontract::SpringError::ResolveFailed(name.to_owned()))?;
        let skel = fs::FileSkeleton::new(Arc::new(FileServant { node }));
        Simplex.export(&self.ctx, skel)
    }

    /// Exports one file as a `cacheable_file` (caching subcontract).
    ///
    /// Caches on different machines are *incoherent* with each other; use
    /// [`FileServer::export_coherent`] when several machines share the file.
    pub fn export_cacheable(self: &Arc<Self>, name: &str) -> Result<SpringObj> {
        let skel = self.cacheable_skeleton(name)?;
        Caching::export(&self.ctx, skel, self.manager_name.clone())
    }

    /// Exports one file as a *coherent* `cacheable_file`: the server
    /// broadcasts epoch-stamped invalidations to every attached machine
    /// after a write commits, and caches serve only under a `lease`.
    /// Returns the object plus the server-side coherence counters.
    pub fn export_coherent(
        self: &Arc<Self>,
        name: &str,
        lease: Duration,
    ) -> Result<(SpringObj, Arc<CoherentStats>)> {
        let skel = self.cacheable_skeleton(name)?;
        Caching::export_coherent(
            &self.ctx,
            skel,
            self.manager_name.clone(),
            crate::cache::file_cacheable_ops(),
            lease,
        )
    }

    fn cacheable_skeleton(self: &Arc<Self>, name: &str) -> Result<Arc<dyn subcontract::Dispatch>> {
        let node = self
            .store
            .get(name)
            .ok_or(subcontract::SpringError::ResolveFailed(name.to_owned()))?;
        Ok(fs::CacheableFileSkeleton::new(Arc::new(
            CacheableFileServant {
                inner: FileServant { node },
                manager: self.manager_name.clone(),
            },
        )))
    }
}

/// Servant for plain files.
struct FileServant {
    node: Arc<Mutex<FileNode>>,
}

impl FileServant {
    fn do_read(&self, offset: i64, count: i64) -> std::result::Result<Vec<u8>, String> {
        if offset < 0 || count < 0 {
            return Err("negative offset or count".to_owned());
        }
        let node = self.node.lock();
        let start = (offset as usize).min(node.content.len());
        let end = (start + count as usize).min(node.content.len());
        Ok(node.content[start..end].to_vec())
    }

    fn do_write(&self, offset: i64, data: &[u8]) -> std::result::Result<(), String> {
        if offset < 0 {
            return Err("negative offset".to_owned());
        }
        let mut node = self.node.lock();
        let end = offset as usize + data.len();
        if node.content.len() < end {
            node.content.resize(end, 0);
        }
        node.content[offset as usize..end].copy_from_slice(data);
        node.version += 1;
        Ok(())
    }
}

impl fs::FileServant for FileServant {
    fn size(&self) -> std::result::Result<i64, fs::FileError> {
        Ok(self.node.lock().content.len() as i64)
    }

    fn read(&self, offset: i64, count: i64) -> std::result::Result<Vec<u8>, fs::FileError> {
        self.do_read(offset, count).map_err(io_err)
    }

    fn write(&self, offset: i64, data: Vec<u8>) -> std::result::Result<(), fs::FileError> {
        self.do_write(offset, &data).map_err(io_err)
    }

    fn truncate(&self, new_size: i64) -> std::result::Result<(), fs::FileError> {
        if new_size < 0 {
            return Err(io_err("negative size"));
        }
        let mut node = self.node.lock();
        node.content.truncate(new_size as usize);
        node.version += 1;
        Ok(())
    }

    fn stat(&self) -> std::result::Result<fs::FileStat, fs::FileError> {
        let node = self.node.lock();
        Ok(fs::FileStat {
            size: node.content.len() as i64,
            version: node.version as i64,
            writable: true,
        })
    }

    fn version(&self) -> std::result::Result<i64, fs::FileError> {
        Ok(self.node.lock().version as i64)
    }
}

/// Servant for cacheable files: the file behaviour plus the manager name.
struct CacheableFileServant {
    inner: FileServant,
    manager: String,
}

impl fs::FileServant for CacheableFileServant {
    fn size(&self) -> std::result::Result<i64, fs::FileError> {
        self.inner.size()
    }

    fn read(&self, offset: i64, count: i64) -> std::result::Result<Vec<u8>, fs::FileError> {
        self.inner.read(offset, count)
    }

    fn write(&self, offset: i64, data: Vec<u8>) -> std::result::Result<(), fs::FileError> {
        self.inner.write(offset, data)
    }

    fn truncate(&self, new_size: i64) -> std::result::Result<(), fs::FileError> {
        self.inner.truncate(new_size)
    }

    fn stat(&self) -> std::result::Result<fs::FileStat, fs::FileError> {
        self.inner.stat()
    }

    fn version(&self) -> std::result::Result<i64, fs::FileError> {
        self.inner.version()
    }
}

impl fs::CacheableFileServant for CacheableFileServant {
    fn cache_manager_name(&self) -> std::result::Result<String, fs::CacheableFileError> {
        Ok(self.manager.clone())
    }
}

/// Servant for the file system itself.
struct FsServant {
    server: Arc<FileServer>,
}

impl fs::FileSystemServant for FsServant {
    fn open(&self, name: String) -> std::result::Result<fs::File, fs::FileSystemError> {
        let obj = self
            .server
            .export_file(&name)
            .map_err(|e| io_err_fs(e.to_string()))?;
        fs::File::from_obj(obj).map_err(fs::FileSystemError::System)
    }

    fn open_cached(
        &self,
        name: String,
    ) -> std::result::Result<fs::CacheableFile, fs::FileSystemError> {
        let obj = self
            .server
            .export_cacheable(&name)
            .map_err(|e| io_err_fs(e.to_string()))?;
        fs::CacheableFile::from_obj(obj).map_err(fs::FileSystemError::System)
    }

    fn create(&self, name: String) -> std::result::Result<(), fs::FileSystemError> {
        let mut files = self.server.store.files.write();
        if files.contains_key(&name) {
            return Err(io_err_fs(format!("{name:?} already exists")));
        }
        files.insert(name, Arc::new(Mutex::new(FileNode::default())));
        Ok(())
    }

    fn remove(&self, name: String) -> std::result::Result<(), fs::FileSystemError> {
        match self.server.store.files.write().remove(&name) {
            Some(_) => Ok(()),
            None => Err(io_err_fs(format!("no such file {name:?}"))),
        }
    }

    fn list(&self) -> std::result::Result<Vec<String>, fs::FileSystemError> {
        let mut names: Vec<String> = self.server.store.files.read().keys().cloned().collect();
        names.sort();
        Ok(names)
    }

    fn import_file(
        &self,
        name: String,
        source: fs::File,
    ) -> std::result::Result<(), fs::FileSystemError> {
        // The source arrived in copy mode: this server owns its copy and can
        // invoke it like any other object — even back across the network.
        let size = source.size().map_err(|e| io_err_fs(e.to_string()))?;
        let content = source.read(0, size).map_err(|e| io_err_fs(e.to_string()))?;
        let node = Arc::new(Mutex::new(FileNode {
            content,
            version: 1,
        }));
        self.server.store.files.write().insert(name, node);
        Ok(())
    }
}
