//! File-flavoured cache manager configuration.

use std::sync::Arc;

use spring_subcontracts::CacheManager;
use subcontract::DomainCtx;

use crate::idl::fs;

/// The read-only file operations a cache may answer locally. Shared by the
/// machine-local manager ([`file_cache_manager`]) and the coherent server
/// export ([`crate::FileServer::export_coherent`]), which must agree on
/// which operations are mutating (epoch-bumping) and which are cacheable.
pub fn file_cacheable_ops() -> [u32; 5] {
    [
        fs::file_ops::SIZE,
        fs::file_ops::READ,
        fs::file_ops::STAT,
        fs::file_ops::VERSION,
        fs::cacheable_file_ops::CACHE_MANAGER_NAME,
    ]
}

/// Creates a cache manager configured for file objects: read-only file
/// operations are cached; writes forward and invalidate.
///
/// Bind the object from [`CacheManager::export`] into the machine-local
/// naming context under the manager name the file server advertises. The
/// manager serves both incoherent and coherent attachments — a coherent
/// server's marshalled form tells the manager to register an invalidation
/// callback and honour leases (DESIGN.md §5.11).
pub fn file_cache_manager(ctx: &Arc<DomainCtx>) -> Arc<CacheManager> {
    CacheManager::new(ctx, file_cacheable_ops())
}
