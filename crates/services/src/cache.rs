//! File-flavoured cache manager configuration.

use std::sync::Arc;

use spring_subcontracts::CacheManager;
use subcontract::DomainCtx;

use crate::idl::fs;

/// Creates a cache manager configured for file objects: read-only file
/// operations are cached; writes forward and invalidate.
///
/// Bind the object from [`CacheManager::export`] into the machine-local
/// naming context under the manager name the file server advertises.
pub fn file_cache_manager(ctx: &Arc<DomainCtx>) -> Arc<CacheManager> {
    CacheManager::new(
        ctx,
        [
            fs::file_ops::SIZE,
            fs::file_ops::READ,
            fs::file_ops::STAT,
            fs::file_ops::VERSION,
            fs::cacheable_file_ops::CACHE_MANAGER_NAME,
        ],
    )
}
