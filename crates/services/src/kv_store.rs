//! An in-memory key-value store behind the `kv.idl` interfaces.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use spring_subcontracts::{ClusterServer, Simplex};
use subcontract::{DomainCtx, Result, ServerSubcontract};

use crate::idl::kv;

fn kv_err(reason: impl Into<String>) -> kv::BucketError {
    kv::BucketError::KvError(kv::KvError {
        reason: reason.into(),
    })
}

#[derive(Debug, Default)]
struct Slot {
    value: Vec<u8>,
    version: u64,
}

/// One bucket's state.
#[derive(Debug)]
struct BucketState {
    entries: RwLock<HashMap<String, Slot>>,
    mode: RwLock<kv::Durability>,
}

impl Default for BucketState {
    fn default() -> Self {
        BucketState {
            entries: RwLock::new(HashMap::new()),
            mode: RwLock::new(kv::Durability::VolatileStore),
        }
    }
}

struct BucketServant {
    state: Arc<BucketState>,
}

impl kv::BucketServant for BucketServant {
    fn get_size(&self) -> std::result::Result<i64, kv::BucketError> {
        Ok(self.state.entries.read().len() as i64)
    }

    fn get_mode(&self) -> std::result::Result<kv::Durability, kv::BucketError> {
        Ok(*self.state.mode.read())
    }

    fn set_mode(&self, value: kv::Durability) -> std::result::Result<(), kv::BucketError> {
        *self.state.mode.write() = value;
        Ok(())
    }

    fn get(&self, key: String) -> std::result::Result<Vec<u8>, kv::BucketError> {
        self.state
            .entries
            .read()
            .get(&key)
            .map(|s| s.value.clone())
            .ok_or_else(|| kv_err(format!("no such key {key:?}")))
    }

    fn put(&self, key: String, value: Vec<u8>) -> std::result::Result<(), kv::BucketError> {
        let mut entries = self.state.entries.write();
        let slot = entries.entry(key).or_default();
        slot.value = value;
        slot.version += 1;
        Ok(())
    }

    fn remove_key(&self, key: String) -> std::result::Result<bool, kv::BucketError> {
        Ok(self.state.entries.write().remove(&key).is_some())
    }

    fn scan(&self, prefix: String) -> std::result::Result<Vec<kv::Entry>, kv::BucketError> {
        let entries = self.state.entries.read();
        let mut found: Vec<kv::Entry> = entries
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(k, s)| kv::Entry {
                key: k.clone(),
                value: s.value.clone(),
                version: s.version as i64,
            })
            .collect();
        found.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(found)
    }

    fn version_of(&self, key: String) -> std::result::Result<i64, kv::BucketError> {
        self.state
            .entries
            .read()
            .get(&key)
            .map(|s| s.version as i64)
            .ok_or_else(|| kv_err(format!("no such key {key:?}")))
    }
}

/// The key-value store service: named buckets of binary values.
///
/// Buckets are exported through simplex by default, or through the cluster
/// subcontract ([`KvStore::new_clustered`]) so that *all* buckets share one
/// kernel door (§8.1) — the generated `Bucket` stubs are identical either
/// way, which is the paper's whole point (§9.1).
pub struct KvStore {
    ctx: Arc<DomainCtx>,
    buckets: RwLock<HashMap<String, Arc<BucketState>>>,
    cluster: Option<Arc<ClusterServer>>,
}

impl KvStore {
    /// Creates a store in `ctx`'s domain (buckets exported via simplex).
    pub fn new(ctx: &Arc<DomainCtx>) -> Arc<KvStore> {
        ctx.types().register(&kv::BUCKET_TYPE);
        ctx.types().register(&kv::STORE_TYPE);
        Arc::new(KvStore {
            ctx: ctx.clone(),
            buckets: RwLock::new(HashMap::new()),
            cluster: None,
        })
    }

    /// Creates a store whose buckets all share one kernel door via the
    /// cluster subcontract.
    pub fn new_clustered(ctx: &Arc<DomainCtx>) -> Result<Arc<KvStore>> {
        ctx.types().register(&kv::BUCKET_TYPE);
        ctx.types().register(&kv::STORE_TYPE);
        Ok(Arc::new(KvStore {
            ctx: ctx.clone(),
            buckets: RwLock::new(HashMap::new()),
            cluster: Some(ClusterServer::new(ctx)?),
        }))
    }

    /// Exports the store object (via simplex).
    pub fn export(self: &Arc<Self>) -> Result<kv::Store> {
        let skel = kv::StoreSkeleton::new(Arc::new(StoreServant {
            store: self.clone(),
        }));
        kv::Store::from_obj(Simplex.export(&self.ctx, skel)?)
    }
}

struct StoreServant {
    store: Arc<KvStore>,
}

impl kv::StoreServant for StoreServant {
    fn open_bucket(&self, name: String) -> std::result::Result<kv::Bucket, kv::StoreError> {
        let state = self.store.buckets.write().entry(name).or_default().clone();
        let skel = kv::BucketSkeleton::new(Arc::new(BucketServant { state }));
        // The same generated skeleton exports through either subcontract.
        let obj = match &self.store.cluster {
            Some(cluster) => cluster.export(skel),
            None => Simplex.export(&self.store.ctx, skel),
        }
        .map_err(kv::StoreError::System)?;
        kv::Bucket::from_obj(obj).map_err(kv::StoreError::System)
    }

    fn buckets(&self) -> std::result::Result<Vec<String>, kv::StoreError> {
        let mut names: Vec<String> = self.store.buckets.read().keys().cloned().collect();
        names.sort();
        Ok(names)
    }

    fn drop_bucket(&self, name: String) -> std::result::Result<(), kv::StoreError> {
        match self.store.buckets.write().remove(&name) {
            Some(_) => Ok(()),
            None => Err(kv::StoreError::KvError(kv::KvError {
                reason: format!("no such bucket {name:?}"),
            })),
        }
    }
}
