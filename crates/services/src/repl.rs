//! Replicated files: replicon objects over a write-fanout server group.
//!
//! The paper's replicon subcontract requires that "the servers are required
//! to perform their own state synchronization" (§5). Here each replica
//! applies mutations locally and forwards them to its peers through the
//! generated `sync_write`/`sync_truncate` operations — ordinary remote
//! invocations on peer objects, no new base-system facilities.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use spring_subcontracts::{ReplicaGroup, RepliconServer, Simplex};
use subcontract::{DomainCtx, Result, ServerSubcontract};

use crate::idl::fs;

fn io_err(reason: impl Into<String>) -> fs::ReplicatedFileError {
    fs::ReplicatedFileError::IoError(fs::IoError {
        reason: reason.into(),
    })
}

#[derive(Debug, Default)]
struct ReplicaState {
    content: Vec<u8>,
    version: u64,
}

/// One replica's servant.
struct ReplicaServant {
    state: Mutex<ReplicaState>,
    /// Peer objects for state synchronization (filled in after the whole
    /// group exists).
    peers: RwLock<Vec<fs::ReplicatedFile>>,
    replica_count: RwLock<i32>,
}

impl ReplicaServant {
    fn apply_write(&self, offset: i64, data: &[u8]) -> std::result::Result<(), String> {
        if offset < 0 {
            return Err("negative offset".to_owned());
        }
        let mut st = self.state.lock();
        let end = offset as usize + data.len();
        if st.content.len() < end {
            st.content.resize(end, 0);
        }
        st.content[offset as usize..end].copy_from_slice(data);
        st.version += 1;
        Ok(())
    }

    fn apply_truncate(&self, new_size: i64) -> std::result::Result<(), String> {
        if new_size < 0 {
            return Err("negative size".to_owned());
        }
        let mut st = self.state.lock();
        st.content.truncate(new_size as usize);
        st.version += 1;
        Ok(())
    }

    /// Fans a mutation out to the peers; dead peers are skipped (they will
    /// be dropped from the group, and clients fail over via replicon).
    fn fan_out(&self, f: impl Fn(&fs::ReplicatedFile) -> bool) {
        for peer in self.peers.read().iter() {
            let _ = f(peer);
        }
    }
}

impl fs::FileServant for ReplicaServant {
    fn size(&self) -> std::result::Result<i64, fs::FileError> {
        Ok(self.state.lock().content.len() as i64)
    }

    fn read(&self, offset: i64, count: i64) -> std::result::Result<Vec<u8>, fs::FileError> {
        if offset < 0 || count < 0 {
            return Err(fs::FileError::IoError(fs::IoError {
                reason: "negative offset or count".into(),
            }));
        }
        let st = self.state.lock();
        let start = (offset as usize).min(st.content.len());
        let end = (start + count as usize).min(st.content.len());
        Ok(st.content[start..end].to_vec())
    }

    fn write(&self, offset: i64, data: Vec<u8>) -> std::result::Result<(), fs::FileError> {
        self.apply_write(offset, &data)
            .map_err(|r| fs::FileError::IoError(fs::IoError { reason: r }))?;
        self.fan_out(|peer| peer.sync_write(offset, &data).is_ok());
        Ok(())
    }

    fn truncate(&self, new_size: i64) -> std::result::Result<(), fs::FileError> {
        self.apply_truncate(new_size)
            .map_err(|r| fs::FileError::IoError(fs::IoError { reason: r }))?;
        self.fan_out(|peer| peer.sync_truncate(new_size).is_ok());
        Ok(())
    }

    fn stat(&self) -> std::result::Result<fs::FileStat, fs::FileError> {
        let st = self.state.lock();
        Ok(fs::FileStat {
            size: st.content.len() as i64,
            version: st.version as i64,
            writable: true,
        })
    }

    fn version(&self) -> std::result::Result<i64, fs::FileError> {
        Ok(self.state.lock().version as i64)
    }
}

impl fs::ReplicatedFileServant for ReplicaServant {
    fn replica_count(&self) -> std::result::Result<i32, fs::ReplicatedFileError> {
        Ok(*self.replica_count.read())
    }

    fn sync_write(
        &self,
        offset: i64,
        data: Vec<u8>,
    ) -> std::result::Result<(), fs::ReplicatedFileError> {
        self.apply_write(offset, &data).map_err(io_err)
    }

    fn sync_truncate(&self, new_size: i64) -> std::result::Result<(), fs::ReplicatedFileError> {
        self.apply_truncate(new_size).map_err(io_err)
    }
}

/// A replicated file: a replicon group over write-fanout replica servants.
pub struct ReplicatedFileGroup {
    group: ReplicaGroup,
    servants: Vec<Arc<ReplicaServant>>,
    ctxs: Vec<Arc<DomainCtx>>,
}

impl ReplicatedFileGroup {
    /// Builds one replica per context on a single machine. See
    /// [`ReplicatedFileGroup::build_with_transport`] for replicas spread
    /// across a network.
    pub fn build(ctxs: &[Arc<DomainCtx>], initial: &[u8]) -> Result<ReplicatedFileGroup> {
        Self::build_with_transport(ctxs, initial, Arc::new(subcontract::KernelTransport))
    }

    /// Builds one replica per context, all starting from `initial` content,
    /// wires the peer mesh through `transport`, and forms the replicon
    /// group.
    pub fn build_with_transport(
        ctxs: &[Arc<DomainCtx>],
        initial: &[u8],
        transport: Arc<dyn subcontract::Transport>,
    ) -> Result<ReplicatedFileGroup> {
        let group = ReplicaGroup::with_transport(transport.clone());
        let mut servants = Vec::with_capacity(ctxs.len());

        for ctx in ctxs {
            crate::register_fs_types(ctx);
            let servant = Arc::new(ReplicaServant {
                state: Mutex::new(ReplicaState {
                    content: initial.to_vec(),
                    version: 1,
                }),
                peers: RwLock::new(Vec::new()),
                replica_count: RwLock::new(ctxs.len() as i32),
            });
            let skel = fs::ReplicatedFileSkeleton::new(servant.clone());
            group.add(RepliconServer::new(ctx, skel)?)?;
            servants.push(servant);
        }

        // Wire the peer mesh: each replica gets a simplex object for every
        // *other* replica to forward mutations to.
        for (i, ctx) in ctxs.iter().enumerate() {
            let mut peers = Vec::new();
            for (j, peer_ctx) in ctxs.iter().enumerate() {
                if i == j {
                    continue;
                }
                let skel = fs::ReplicatedFileSkeleton::new(servants[j].clone());
                let exported = Simplex.export(peer_ctx, skel)?;
                let moved = subcontract::ship_object(
                    &*transport,
                    exported,
                    ctx,
                    &fs::REPLICATED_FILE_TYPE,
                )?;
                peers.push(fs::ReplicatedFile::from_obj(moved)?);
            }
            *servants[i].peers.write() = peers;
        }

        Ok(ReplicatedFileGroup {
            group,
            servants,
            ctxs: ctxs.to_vec(),
        })
    }

    /// Fabricates a client object holding one door per replica.
    pub fn object_for(&self, ctx: &Arc<DomainCtx>) -> Result<fs::ReplicatedFile> {
        crate::register_fs_types(ctx);
        fs::ReplicatedFile::from_obj(self.group.object_for(ctx)?)
    }

    /// The underlying replicon group (membership management).
    pub fn group(&self) -> &ReplicaGroup {
        &self.group
    }

    /// Crashes replica `i`'s domain and removes it from the group, bumping
    /// the epoch so clients pick up the survivors.
    pub fn crash_replica(&self, i: usize) -> Result<()> {
        self.ctxs[i].domain().crash();
        // Drop the dead peer stubs so fan-out stops trying it quickly; the
        // stubs in crashed domains died with their domain.
        for (j, servant) in self.servants.iter().enumerate() {
            if j != i {
                servant.peers.write().retain(|p| {
                    // A peer stub is dead when its door no longer works; we
                    // keep it simple and drop stubs by position parity with
                    // the crashed replica, detected by a failed ping.
                    p.version().is_ok()
                });
                *servant.replica_count.write() = (self.group.len() - 1) as i32;
            }
        }
        self.group.remove_dead()
    }

    /// Direct access to a replica's content (test observation).
    pub fn replica_content(&self, i: usize) -> Vec<u8> {
        self.servants[i].state.lock().content.clone()
    }
}
