//! End-to-end service tests over IDL-generated stubs: the file system on
//! simplex, caching across "machines", replication with failover, and the
//! copy-mode object parameter.

use std::sync::Arc;

use spring_buf::CommBuffer;
use spring_kernel::Kernel;
use spring_naming::{NameClient, NameServer, NAMING_CONTEXT_TYPE};
use spring_services::{file_cache_manager, fs, register_fs_types, FileServer, ReplicatedFileGroup};
use spring_subcontracts::register_standard;
use subcontract::{unmarshal_object, DomainCtx, SpringObj};

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    register_fs_types(&ctx);
    ctx
}

/// Moves an object between domains on one kernel.
fn ship(obj: SpringObj, to: &Arc<DomainCtx>) -> SpringObj {
    let from_ctx = obj.ctx().clone();
    let tinfo = obj.type_info();
    let mut buf = CommBuffer::new();
    obj.marshal(&mut buf).unwrap();
    let mut msg = buf.into_message();
    let mut moved = Vec::new();
    for d in msg.doors {
        moved.push(from_ctx.domain().transfer_door(d, to.domain()).unwrap());
    }
    msg.doors = moved;
    let mut buf = CommBuffer::from_message(msg);
    unmarshal_object(to, tinfo, &mut buf).unwrap()
}

#[test]
fn file_system_via_generated_stubs() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "fileserver");
    let client = ctx_on(&kernel, "client");

    let fileserver = FileServer::new(&server, "cache_manager");
    fileserver.put("/etc/motd", b"welcome to spring");
    let fsys = fileserver.export_fs().unwrap();
    let fsys = fs::FileSystem::from_obj(ship(fsys.into_obj(), &client)).unwrap();

    // Directory operations.
    assert_eq!(fsys.list().unwrap(), vec!["/etc/motd".to_owned()]);
    fsys.create("/tmp/new").unwrap();
    assert_eq!(fsys.list().unwrap().len(), 2);

    // Open returns a file *object* — unmarshalled through its subcontract.
    let f = fsys.open("/etc/motd").unwrap();
    assert_eq!(f.size().unwrap(), 17);
    assert_eq!(f.read(0, 7).unwrap(), b"welcome");
    f.write(11, b"SPRING").unwrap();
    assert_eq!(f.read(0, 17).unwrap(), b"welcome to SPRING");
    let st = f.stat().unwrap();
    assert_eq!(st.size, 17);
    assert_eq!(st.version, 2);
    assert!(st.writable);

    // Errors arrive as typed user exceptions.
    match fsys.open("/no/such").unwrap_err() {
        fs::FileSystemError::IoError(e) => assert!(e.reason.contains("/no/such")),
        other => panic!("expected io_error, got {other:?}"),
    }
    match fsys.create("/etc/motd").unwrap_err() {
        fs::FileSystemError::IoError(e) => assert!(e.reason.contains("exists")),
        other => panic!("expected io_error, got {other:?}"),
    }

    fsys.remove("/tmp/new").unwrap();
    assert_eq!(fsys.list().unwrap().len(), 1);
}

#[test]
fn truncate_and_bad_args() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "fileserver");
    let fileserver = FileServer::new(&server, "m");
    fileserver.put("f", b"0123456789");

    let f = fs::File::from_obj(fileserver.export_file("f").unwrap()).unwrap();
    f.truncate(4).unwrap();
    assert_eq!(f.read(0, 100).unwrap(), b"0123");
    match f.read(-1, 2).unwrap_err() {
        fs::FileError::IoError(e) => assert!(e.reason.contains("negative")),
        other => panic!("expected io_error, got {other:?}"),
    }
    match f.truncate(-5).unwrap_err() {
        fs::FileError::IoError(e) => assert!(e.reason.contains("negative")),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn import_file_exercises_copy_mode() {
    let kernel = Kernel::new("t");
    let server_a = ctx_on(&kernel, "fs-a");
    let server_b = ctx_on(&kernel, "fs-b");
    let client = ctx_on(&kernel, "client");

    let fs_a = FileServer::new(&server_a, "m");
    fs_a.put("orig", b"payload");
    let fs_b = FileServer::new(&server_b, "m");

    let fsys_b =
        fs::FileSystem::from_obj(ship(fs_b.export_fs().unwrap().into_obj(), &client)).unwrap();
    let f = fs::File::from_obj(ship(fs_a.export_file("orig").unwrap(), &client)).unwrap();

    // Copy mode: the client keeps its file object after the call.
    fsys_b.import_file("copied", &f).unwrap();
    assert_eq!(f.size().unwrap(), 7);

    let copied = fsys_b.open("copied").unwrap();
    assert_eq!(copied.read(0, 7).unwrap(), b"payload");
}

#[test]
fn cacheable_files_cache_on_the_client_machine() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "fileserver");
    let mgr_ctx = ctx_on(&kernel, "cache-manager");
    let client = ctx_on(&kernel, "client");
    let ns_ctx = ctx_on(&kernel, "name-server");

    // Machine-local naming carries the cache manager.
    let ns = NameServer::new(&ns_ctx);
    let manager = file_cache_manager(&mgr_ctx);
    let mgr_names = NameClient::from_obj(ship(ns.root_object().unwrap(), &mgr_ctx)).unwrap();
    mgr_names
        .bind("cache_manager", &manager.export().unwrap())
        .unwrap();

    let client_names = NameClient::from_obj(ship(ns.root_object().unwrap(), &client)).unwrap();
    client.set_resolver(Arc::new(client_names));

    let fileserver = FileServer::new(&server, "cache_manager");
    fileserver.put("data", b"cached bytes");
    let fsys = fs::FileSystem::from_obj(ship(fileserver.export_fs().unwrap().into_obj(), &client))
        .unwrap();

    // `open_cached` hands back a cacheable_file; its unmarshal attached to
    // the local cache manager.
    let f = fsys.open_cached("data").unwrap();
    assert_eq!(f.cache_manager_name().unwrap(), "cache_manager");
    for _ in 0..4 {
        assert_eq!(f.read(0, 6).unwrap(), b"cached");
    }
    assert_eq!(manager.stats().attaches(), 1);
    assert!(manager.stats().hits() >= 3);

    // Writes invalidate; subsequent reads see fresh data.
    f.write(0, b"CACHED").unwrap();
    assert_eq!(f.read(0, 6).unwrap(), b"CACHED");
}

#[test]
fn narrowing_discovers_richer_semantics() {
    // §6.3: a client holding a `file` narrows it to `cacheable_file`.
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "fileserver");
    let mgr_ctx = ctx_on(&kernel, "mgr");
    let client = ctx_on(&kernel, "client");
    let ns_ctx = ctx_on(&kernel, "ns");

    let ns = NameServer::new(&ns_ctx);
    let manager = file_cache_manager(&mgr_ctx);
    let names = NameClient::from_obj(ship(ns.root_object().unwrap(), &mgr_ctx)).unwrap();
    names
        .bind("cache_manager", &manager.export().unwrap())
        .unwrap();
    let client_names = NameClient::from_obj(ship(ns.root_object().unwrap(), &client)).unwrap();
    client.set_resolver(Arc::new(client_names));

    let fileserver = FileServer::new(&server, "cache_manager");
    fileserver.put("x", b"abc");
    let cacheable = fileserver.export_cacheable("x").unwrap();
    let arrived = ship(cacheable, &client);

    // Statically a file, dynamically a cacheable_file.
    let as_file = fs::File::from_obj(arrived).unwrap();
    assert_eq!(as_file.size().unwrap(), 3);
    let again = as_file.into_obj();
    again.narrow(&fs::CACHEABLE_FILE_TYPE).unwrap();
    let as_cacheable = fs::CacheableFile::from_obj(again).unwrap();
    assert_eq!(as_cacheable.cache_manager_name().unwrap(), "cache_manager");
}

#[test]
fn replicated_file_with_failover() {
    let kernel = Kernel::new("t");
    let replicas: Vec<Arc<DomainCtx>> = (0..3)
        .map(|i| ctx_on(&kernel, &format!("replica-{i}")))
        .collect();
    let client = ctx_on(&kernel, "client");

    let group = ReplicatedFileGroup::build(&replicas, b"genesis").unwrap();
    let f = group.object_for(&client).unwrap();

    assert_eq!(f.replica_count().unwrap(), 3);
    assert_eq!(f.read(0, 7).unwrap(), b"genesis");

    // Writes fan out to every replica.
    f.write(0, b"GENESIS").unwrap();
    for i in 0..3 {
        assert_eq!(group.replica_content(i), b"GENESIS");
    }

    // Kill the replica the client would talk to first; reads fail over.
    group.crash_replica(0).unwrap();
    assert_eq!(f.read(0, 7).unwrap(), b"GENESIS");
    // And writes still replicate across the survivors.
    f.write(0, b"zENESIS").unwrap();
    assert_eq!(group.replica_content(1), b"zENESIS");
    assert_eq!(group.replica_content(2), b"zENESIS");
}

#[test]
fn replicated_file_truncate_fans_out() {
    let kernel = Kernel::new("t");
    let replicas: Vec<Arc<DomainCtx>> = (0..2).map(|i| ctx_on(&kernel, &format!("r{i}"))).collect();
    let client = ctx_on(&kernel, "client");

    let group = ReplicatedFileGroup::build(&replicas, b"0123456789").unwrap();
    let f = group.object_for(&client).unwrap();
    f.truncate(3).unwrap();
    assert_eq!(group.replica_content(0), b"012");
    assert_eq!(group.replica_content(1), b"012");
    assert_eq!(f.size().unwrap(), 3);
}

#[test]
fn file_objects_can_be_bound_in_naming() {
    // Any subcontract's objects can live in the name service — including
    // the file system object itself.
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "fileserver");
    let ns_ctx = ctx_on(&kernel, "ns");
    let client = ctx_on(&kernel, "client");

    register_fs_types(&ns_ctx);
    let ns = NameServer::new(&ns_ctx);
    let fileserver = FileServer::new(&server, "m");
    fileserver.put("hello", b"hi");

    let server_names = NameClient::from_obj(ship(ns.root_object().unwrap(), &server)).unwrap();
    server_names.create_context("services").unwrap();
    server_names
        .bind_consume("services/fs", fileserver.export_fs().unwrap().into_obj())
        .unwrap();

    let client_names = NameClient::from_obj(ship(ns.root_object().unwrap(), &client)).unwrap();
    let fsys = fs::FileSystem::from_obj(
        client_names
            .resolve("services/fs", &fs::FILE_SYSTEM_TYPE)
            .unwrap(),
    )
    .unwrap();
    let f = fsys.open("hello").unwrap();
    assert_eq!(f.read(0, 2).unwrap(), b"hi");
    let _ = NAMING_CONTEXT_TYPE;
}
