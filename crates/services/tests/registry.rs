//! The bootstrap registry, end to end over a real socket: two `Network`
//! instances standing in for two OS processes, connected over a Unix-domain
//! socket, exchanging *typed* objects through the registry door advertised
//! in the HELLO — the full cross-process first-contact path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spring_buf::CommBuffer;
use spring_net::{NetConfig, Network};
use spring_services::{fs, register_fs_types, FileServer, RegistryClient, RegistryServant};
use spring_subcontracts::register_standard;
use subcontract::{DomainCtx, SpringError};

fn ctx_on(kernel: &spring_kernel::Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    register_fs_types(&ctx);
    ctx
}

fn temp_sock(tag: &str) -> String {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!("spring-reg-{}-{tag}-{n}.sock", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn registry_serves_typed_objects_across_a_socket() {
    // Server "process": a file server whose file system is registered
    // under a well-known name, with the registry door as the bootstrap.
    let s_net = Network::new(NetConfig::default());
    let s_node = s_net.add_node_with_id("server-proc", 201);
    let s_ctx = ctx_on(s_node.kernel(), "fileserver");
    let reg_domain = s_node.kernel().create_domain("registry");
    let (servant, reg_door) = RegistryServant::publish(&reg_domain).unwrap();

    let fileserver = FileServer::new(&s_ctx, "cache_manager");
    fileserver.put("/etc/motd", b"hello over sockets");
    let fsys = fileserver.export_fs().unwrap();
    servant.register_local("fs", &fsys.into_obj()).unwrap();
    assert_eq!(servant.names(), vec!["fs".to_owned()]);

    // `set_bootstrap` consumes the identifier; keep a copy for in-process
    // registry use on the server side.
    let s_local_door = reg_domain
        .copy_door(reg_door)
        .and_then(|d| reg_domain.transfer_door(d, s_ctx.domain()))
        .unwrap();
    s_net
        .set_bootstrap(s_node.id(), &reg_domain, reg_door)
        .unwrap();
    let path = temp_sock("uds");
    let _listener = s_net.listen_uds(s_node.id(), &path).unwrap();

    // Client "process": dial, pull the registry door out of the HELLO,
    // and fetch the file system as a typed object.
    let c_net = Network::new(NetConfig::default());
    let c_node = c_net.add_node_with_id("client-proc", 202);
    let c_ctx = ctx_on(c_node.kernel(), "client");
    let peer = c_net.connect_uds(c_node.id(), &path).unwrap();
    let boot = peer.bootstrap_door(c_ctx.domain()).unwrap();
    let registry = RegistryClient::new(c_ctx.clone(), boot);

    assert_eq!(registry.list().unwrap(), vec!["fs".to_owned()]);
    let obj = registry.lookup("fs", &fs::FILE_SYSTEM_TYPE).unwrap();
    let remote_fs = fs::FileSystem::from_obj(obj).unwrap();

    // Every stub call below crosses the socket through proxy doors.
    assert_eq!(remote_fs.list().unwrap(), vec!["/etc/motd".to_owned()]);
    let f = remote_fs.open("/etc/motd").unwrap();
    assert_eq!(f.read(0, 5).unwrap(), b"hello");
    f.write(6, b"across socket ").unwrap();
    assert_eq!(f.read(0, 18).unwrap(), b"hello across socke");

    // Unknown names fail with a typed resolve error, not a wedged call.
    match registry.lookup("nope", &fs::FILE_SYSTEM_TYPE) {
        Err(SpringError::ResolveFailed(why)) => assert!(why.contains("nope")),
        other => panic!("expected ResolveFailed, got {other:?}"),
    }

    // Registration works *through* the door too: the client publishes its
    // own file system, whose doors are stored server-side as proxies back
    // to the client process.
    let c_files = FileServer::new(&c_ctx, "cache_manager");
    c_files.put("/client/own", b"mine");
    let c_fs = c_files.export_fs().unwrap();
    registry.register("client-fs", &c_fs.into_obj()).unwrap();
    assert_eq!(
        registry.list().unwrap(),
        vec!["client-fs".to_owned(), "fs".to_owned()]
    );

    // Looking the entry back up from the registering process brings the
    // identifiers home: the fetched object is served locally again.
    let home = registry.lookup("client-fs", &fs::FILE_SYSTEM_TYPE).unwrap();
    let home_fs = fs::FileSystem::from_obj(home).unwrap();
    assert_eq!(home_fs.list().unwrap(), vec!["/client/own".to_owned()]);
    assert_eq!(
        home_fs.open("/client/own").unwrap().read(0, 4).unwrap(),
        b"mine"
    );

    // The server process can reach the client's file system as well: the
    // stored proxies route calls back across the same connection.
    let s_view = RegistryClient::new(s_ctx.clone(), s_local_door)
        .lookup("client-fs", &fs::FILE_SYSTEM_TYPE)
        .unwrap();
    let s_fs = fs::FileSystem::from_obj(s_view).unwrap();
    assert_eq!(
        s_fs.open("/client/own").unwrap().read(0, 4).unwrap(),
        b"mine"
    );
}

#[test]
fn registry_round_trips_locally_without_any_socket() {
    // The same servant/client pair over a plain local door: the simulated
    // and socket paths share one handshake protocol.
    let kernel = spring_kernel::Kernel::new("local");
    let ctx = ctx_on(&kernel, "apps");
    let reg_domain = kernel.create_domain("registry");
    let (servant, door) = RegistryServant::publish(&reg_domain).unwrap();

    let files = FileServer::new(&ctx, "cache_manager");
    files.put("/a", b"aa");
    servant
        .register_local("fs", &files.export_fs().unwrap().into_obj())
        .unwrap();

    let local_door = reg_domain
        .copy_door(door)
        .and_then(|d| reg_domain.transfer_door(d, ctx.domain()))
        .unwrap();
    let registry = RegistryClient::new(ctx.clone(), local_door);
    let obj = registry.lookup("fs", &fs::FILE_SYSTEM_TYPE).unwrap();
    let fsys = fs::FileSystem::from_obj(obj).unwrap();
    assert_eq!(fsys.open("/a").unwrap().read(0, 2).unwrap(), b"aa");

    // Replacing a binding must not leak the replaced entry's doors.
    let before = {
        let s = kernel.stats();
        s.ids_issued - s.ids_deleted
    };
    files.put("/b", b"bb");
    servant
        .register_local("fs", &files.export_fs().unwrap().into_obj())
        .unwrap();
    let after = {
        let s = kernel.stats();
        s.ids_issued - s.ids_deleted
    };
    assert_eq!(after, before, "replaced registry entry leaked identifiers");

    // A malformed registry call is answered with a typed error and leaves
    // no identifiers behind.
    let msg = CommBuffer::new().into_message();
    let res = ctx.domain().call(
        {
            reg_domain
                .copy_door(door)
                .and_then(|d| reg_domain.transfer_door(d, ctx.domain()))
                .unwrap()
        },
        msg,
    );
    assert!(res.is_err(), "empty registry call must be rejected");
}
