//! The stats door: kernel counters and latency percentiles readable by an
//! ordinary client across a `spring-net` link while the server is working.

use std::sync::Arc;

use spring_kernel::Kernel;
use spring_net::{NetConfig, Network};
use spring_services::{
    AppendLogClient, AppendLogServant, AppendLogState, StatsClient, StatsServant, APPEND_LOG_TYPE,
    STATS_TYPE,
};
use spring_subcontracts::{register_standard, Singleton};
use subcontract::{ship_object, DomainCtx, ServerSubcontract};

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    ctx.types().register(&STATS_TYPE);
    ctx.types().register(&APPEND_LOG_TYPE);
    ctx
}

#[test]
fn stats_door_reports_live_counters_across_the_net() {
    let net = Network::new(NetConfig::default());
    let a = net.add_node("observer-machine");
    let b = net.add_node("server-machine");
    let server = ctx_on(b.kernel(), "server");
    let client = ctx_on(a.kernel(), "observer");

    // The server does real work: an append-log servant takes door calls.
    let log = AppendLogState::new();
    let log_obj = Singleton
        .export(&server, AppendLogServant::new(log))
        .unwrap();
    let log_client =
        AppendLogClient(ship_object(&*net, log_obj, &client, &APPEND_LOG_TYPE).unwrap());

    // The stats door is just another exported object on the same machine.
    let stats_obj = Singleton
        .export(&server, StatsServant::new(b.kernel().clone()))
        .unwrap();
    let stats = StatsClient(ship_object(&*net, stats_obj, &client, &STATS_TYPE).unwrap());

    for i in 0..10 {
        log_client.append(i).unwrap();
    }

    // Counter names travel with the values, so the reader needs no shared
    // struct layout with the server.
    let counters = stats.kernel_stats().unwrap();
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("counter {name} missing from {counters:?}"))
    };
    assert!(get("door_calls") >= 10, "appends are door calls");
    assert!(get("doors_created") >= 2, "log and stats doors exist");

    // And the snapshot is *live*: more work moves the counters.
    let before = get("door_calls");
    for i in 0..5 {
        log_client.append(i).unwrap();
    }
    let counters = stats.kernel_stats().unwrap();
    let after = counters
        .iter()
        .find(|(n, _)| n == "door_calls")
        .map(|(_, v)| *v)
        .unwrap();
    assert!(after > before);
}

#[test]
fn stats_door_serves_histogram_percentiles() {
    let net = Network::new(NetConfig::default());
    let a = net.add_node("observer");
    let b = net.add_node("server");
    let server = ctx_on(b.kernel(), "server");
    let client = ctx_on(a.kernel(), "observer");

    // Unique key so parallel tests sharing the process registry can't
    // collide with this one.
    const KEY: u64 = 0x57A7_5D00;
    let hist = spring_trace::histogram(KEY, "stats_door_test_op");
    for ns in [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000] {
        hist.record(ns);
    }

    let stats_obj = Singleton
        .export(&server, StatsServant::new(b.kernel().clone()))
        .unwrap();
    let stats = StatsClient(ship_object(&*net, stats_obj, &client, &STATS_TYPE).unwrap());

    let summary = stats
        .hist_summary(KEY, "stats_door_test_op")
        .unwrap()
        .expect("histogram is registered");
    assert_eq!(summary.count, 10);
    assert_eq!(summary.sum_ns, 5500);
    assert_eq!(summary.max_ns, 1000);
    assert!(summary.p50_ns >= 500 && summary.p50_ns <= 500 + 500 / 16);
    assert!(summary.p99_ns >= 1000 && summary.p99_ns <= 1000 + 1000 / 16);
    assert!(summary.p999_ns >= summary.p99_ns);
    assert!(summary.max_ns <= summary.p999_ns.max(summary.max_ns));

    // Unknown histograms are a typed "no", not an error.
    assert_eq!(stats.hist_summary(KEY, "no_such_op").unwrap(), None);

    // The list op shows the histogram with its sample count.
    let rows = stats.hist_list().unwrap();
    assert!(rows
        .iter()
        .any(|(k, op, count)| *k == KEY && op == "stats_door_test_op" && *count == 10));
}
