//! Key-value store tests: the second IDL consumer, covering attributes
//! (accessor desugaring), enums over the wire, and structs in sequences.

use std::sync::Arc;

use spring_buf::CommBuffer;
use spring_kernel::Kernel;
use spring_services::{kv, KvStore};
use spring_subcontracts::register_standard;
use subcontract::{unmarshal_object, DomainCtx, SpringObj};

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    ctx.types().register(&kv::BUCKET_TYPE);
    ctx.types().register(&kv::STORE_TYPE);
    ctx
}

fn ship(obj: SpringObj, to: &Arc<DomainCtx>) -> SpringObj {
    let from_ctx = obj.ctx().clone();
    let tinfo = obj.type_info();
    let mut buf = CommBuffer::new();
    obj.marshal(&mut buf).unwrap();
    let mut msg = buf.into_message();
    let mut moved = Vec::new();
    for d in msg.doors {
        moved.push(from_ctx.domain().transfer_door(d, to.domain()).unwrap());
    }
    msg.doors = moved;
    let mut buf = CommBuffer::from_message(msg);
    unmarshal_object(to, tinfo, &mut buf).unwrap()
}

fn client_store(kernel: &Kernel) -> (kv::Store, Arc<DomainCtx>) {
    let server = ctx_on(kernel, "kv-server");
    let client = ctx_on(kernel, "client");
    let store = KvStore::new(&server);
    let obj = ship(store.export().unwrap().into_obj(), &client);
    (kv::Store::from_obj(obj).unwrap(), client)
}

#[test]
fn put_get_remove_roundtrip() {
    let kernel = Kernel::new("t");
    let (store, _client) = client_store(&kernel);

    let bucket = store.open_bucket("users").unwrap();
    bucket.put("alice", b"admin").unwrap();
    bucket.put("bob", b"guest").unwrap();

    assert_eq!(bucket.get("alice").unwrap(), b"admin");
    assert_eq!(bucket.get_size().unwrap(), 2);
    assert!(bucket.remove_key("bob").unwrap());
    assert!(!bucket.remove_key("bob").unwrap());
    match bucket.get("bob").unwrap_err() {
        kv::BucketError::KvError(e) => assert!(e.reason.contains("bob")),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn attributes_read_and_write_over_the_wire() {
    let kernel = Kernel::new("t");
    let (store, _client) = client_store(&kernel);
    let bucket = store.open_bucket("cfg").unwrap();

    // readonly attribute: getter only (set_size does not exist, enforced at
    // compile time by this file compiling).
    assert_eq!(bucket.get_size().unwrap(), 0);

    // read-write enum attribute.
    assert_eq!(bucket.get_mode().unwrap(), kv::Durability::VolatileStore);
    bucket.set_mode(kv::Durability::PersistentStore).unwrap();
    assert_eq!(bucket.get_mode().unwrap(), kv::Durability::PersistentStore);
}

#[test]
fn scan_returns_structs_in_order() {
    let kernel = Kernel::new("t");
    let (store, _client) = client_store(&kernel);
    let bucket = store.open_bucket("data").unwrap();

    bucket.put("k/2", b"two").unwrap();
    bucket.put("k/1", b"one").unwrap();
    bucket.put("k/1", b"uno").unwrap(); // Version bumps to 2.
    bucket.put("other", b"x").unwrap();

    let hits = bucket.scan("k/").unwrap();
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0].key, "k/1");
    assert_eq!(hits[0].value, b"uno");
    assert_eq!(hits[0].version, 2);
    assert_eq!(hits[1].key, "k/2");
    assert_eq!(bucket.version_of("k/1").unwrap(), 2);
}

#[test]
fn buckets_share_state_across_opens() {
    let kernel = Kernel::new("t");
    let (store, _client) = client_store(&kernel);

    let a = store.open_bucket("shared").unwrap();
    let b = store.open_bucket("shared").unwrap();
    a.put("k", b"v").unwrap();
    assert_eq!(b.get("k").unwrap(), b"v");

    assert_eq!(store.buckets().unwrap(), vec!["shared".to_owned()]);
    store.drop_bucket("shared").unwrap();
    assert!(store.buckets().unwrap().is_empty());
    match store.drop_bucket("shared").unwrap_err() {
        kv::StoreError::KvError(e) => assert!(e.reason.contains("shared")),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn bucket_objects_move_between_domains() {
    let kernel = Kernel::new("t");
    let (store, client) = client_store(&kernel);
    let other = ctx_on(&kernel, "other");

    let bucket = store.open_bucket("mv").unwrap();
    bucket.put("here", b"data").unwrap();
    let _ = client;
    let moved = kv::Bucket::from_obj(ship(bucket.into_obj(), &other)).unwrap();
    assert_eq!(moved.get("here").unwrap(), b"data");
}

#[test]
fn clustered_store_shares_one_door_for_all_buckets() {
    let kernel = Kernel::new("t");
    let server = ctx_on(&kernel, "kv-server");
    let client = ctx_on(&kernel, "client");

    let before = kernel.stats();
    let store = KvStore::new_clustered(&server).unwrap();
    let store_stub =
        kv::Store::from_obj(ship(store.export().unwrap().into_obj(), &client)).unwrap();

    // Many buckets, identical generated stubs — but the cluster subcontract
    // carries them all through a single kernel door (plus one for the store
    // object itself).
    let buckets: Vec<kv::Bucket> = (0..32)
        .map(|i| store_stub.open_bucket(&format!("b{i}")).unwrap())
        .collect();
    let doors = kernel.stats().since(&before).doors_created;
    assert_eq!(
        doors, 2,
        "cluster door + store door, regardless of bucket count"
    );

    for (i, b) in buckets.iter().enumerate() {
        b.put("k", format!("v{i}").as_bytes()).unwrap();
    }
    for (i, b) in buckets.iter().enumerate() {
        assert_eq!(b.get("k").unwrap(), format!("v{i}").into_bytes());
        assert_eq!(b.obj().subcontract().name(), "cluster");
    }
}
