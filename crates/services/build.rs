//! Build script: compile the IDL sources to Rust stubs.

fn main() {
    let out_dir = std::path::PathBuf::from(std::env::var("OUT_DIR").expect("OUT_DIR"));
    for name in ["fs", "kv"] {
        let input = format!("idl/{name}.idl");
        println!("cargo::rerun-if-changed={input}");
        let source = std::fs::read_to_string(&input).unwrap_or_else(|e| panic!("{input}: {e}"));
        let rust = match spring_idl::compile(&source) {
            Ok(code) => code,
            Err(e) => panic!("{input}: {e}"),
        };
        std::fs::write(out_dir.join(format!("{name}.rs")), rust).expect("write generated stubs");
    }
}
