//! Facade crate for the Spring subcontract reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can use a single dependency. See the README for an
//! architecture overview and DESIGN.md for the system inventory.
//!
//! # Examples
//!
//! Export an object through one subcontract, move it to another domain, and
//! invoke it — the §7 life cycle in miniature:
//!
//! ```
//! use std::sync::Arc;
//! use spring::buf::CommBuffer;
//! use spring::core::{
//!     encode_ok, op_hash, ship_object, Dispatch, DomainCtx, KernelTransport, Result,
//!     ServerCtx, ServerSubcontract, SpringError, TypeInfo, OBJECT_TYPE,
//! };
//! use spring::kernel::Kernel;
//! use spring::subcontracts::{register_standard, Simplex};
//!
//! static GREETER_TYPE: TypeInfo = TypeInfo {
//!     name: "greeter",
//!     parents: &[&OBJECT_TYPE],
//!     default_subcontract: spring::subcontracts::Singleton::ID,
//! };
//!
//! struct Greeter;
//! impl Dispatch for Greeter {
//!     fn type_info(&self) -> &'static TypeInfo {
//!         &GREETER_TYPE
//!     }
//!     fn dispatch(
//!         &self,
//!         _sctx: &ServerCtx,
//!         op: u32,
//!         args: &mut CommBuffer,
//!         reply: &mut CommBuffer,
//!     ) -> Result<()> {
//!         if op == op_hash("greet") {
//!             let name = args.get_string()?;
//!             encode_ok(reply);
//!             reply.put_string(&format!("hello, {name}"));
//!             Ok(())
//!         } else {
//!             Err(SpringError::UnknownOp(op))
//!         }
//!     }
//! }
//!
//! let kernel = Kernel::new("machine");
//! let server = DomainCtx::new(kernel.create_domain("server"));
//! let client = DomainCtx::new(kernel.create_domain("client"));
//! register_standard(&server);
//! register_standard(&client);
//! client.types().register(&GREETER_TYPE);
//!
//! // Birth at the server, transmission to the client.
//! let obj = Simplex.export(&server, Arc::new(Greeter)).unwrap();
//! let obj = ship_object(&KernelTransport, obj, &client, &GREETER_TYPE).unwrap();
//!
//! // Invocation through the (hand-rolled) stub.
//! let mut call = obj.start_call(op_hash("greet")).unwrap();
//! call.put_string("spring");
//! let mut reply = obj.invoke(call).unwrap();
//! spring::core::decode_reply_status(&mut reply).unwrap();
//! assert_eq!(reply.get_string().unwrap(), "hello, spring");
//! ```

pub use spring_buf as buf;
pub use spring_idl as idl;
pub use spring_kernel as kernel;
pub use spring_naming as naming;
pub use spring_net as net;
pub use spring_services as services;
pub use spring_subcontracts as subcontracts;
pub use spring_trace as trace;
pub use subcontract as core;
