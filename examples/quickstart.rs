//! Quickstart: a file server and a client in separate domains, glued by the
//! name service — the paper's §7 life-cycle in a few lines.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use spring::core::{ship_object, DomainCtx, KernelTransport};
use spring::kernel::Kernel;
use spring::naming::{NameClient, NameServer, NAMING_CONTEXT_TYPE};
use spring::services::{fs, FileServer};
use spring::subcontracts::register_standard;

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    spring::services::register_fs_types(&ctx);
    ctx
}

fn main() {
    // One machine, three domains: a name server, a file server, a client.
    let kernel = Kernel::new("machine");
    let transport = KernelTransport;
    let ns_ctx = ctx_on(&kernel, "name-server");
    let fs_ctx = ctx_on(&kernel, "file-server");
    let client_ctx = ctx_on(&kernel, "client");

    let ns = NameServer::new(&ns_ctx);

    // The file server creates a file and binds its file_system object.
    let fileserver = FileServer::new(&fs_ctx, "cache_manager");
    fileserver.put("/etc/motd", b"hello from the Spring file server");
    let fs_names = NameClient::from_obj(
        ship_object(
            &transport,
            ns.root_object().unwrap(),
            &fs_ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    fs_names
        .bind_consume("fs", fileserver.export_fs().unwrap().into_obj())
        .unwrap();

    // The client resolves the file system and uses it through generated
    // stubs; which subcontract carries the calls is invisible here.
    let client_names = NameClient::from_obj(
        ship_object(
            &transport,
            ns.root_object().unwrap(),
            &client_ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    let fsys = fs::FileSystem::from_obj(client_names.resolve("fs", &fs::FILE_SYSTEM_TYPE).unwrap())
        .unwrap();

    let f = fsys.open("/etc/motd").unwrap();
    println!("size     = {}", f.size().unwrap());
    println!(
        "contents = {:?}",
        String::from_utf8(f.read(0, 64).unwrap()).unwrap()
    );

    f.write(0, b"HELLO").unwrap();
    println!(
        "after write: {:?}",
        String::from_utf8(f.read(0, 64).unwrap()).unwrap()
    );

    // A shallow copy shares the underlying file (§7).
    let copy = f.copy().unwrap();
    println!(
        "copy sees: {:?}",
        String::from_utf8(copy.read(0, 5).unwrap()).unwrap()
    );

    // Deleting the objects notifies the server via the kernel's
    // unreferenced mechanism.
    drop(copy);
    drop(f);
    println!("doors still live on the kernel: {}", kernel.live_doors());
}
