//! The paper's §8.4 future directions, implemented and running: priority
//! transfer, transaction control information, and a loss-tolerant video
//! stream — all introduced without touching the base system.
//!
//! Run with: `cargo run --example extension_subcontracts`

use std::sync::Arc;

use parking_lot::Mutex;
use spring::buf::CommBuffer;
use spring::core::{
    encode_ok, op_hash, DomainCtx, Result, ServerCtx, ServerSubcontract, SpringError, TypeInfo,
};
use spring::kernel::Kernel;
use spring::net::{NetConfig, Network};
use spring::subcontracts::priority::{current_call_priority, Priority};
use spring::subcontracts::stream::{FrameOutcome, Stream};
use spring::subcontracts::txn::{current_txn, Txn, TxnScope};
use spring::subcontracts::{register_standard, Singleton};

static WORKER_TYPE: TypeInfo = TypeInfo {
    name: "worker",
    parents: &[&spring::core::OBJECT_TYPE],
    default_subcontract: Singleton::ID,
};

const OP_WORK: u32 = op_hash("work");

/// A servant that reports what the subcontract layer told it about the call.
struct Worker {
    log: Mutex<Vec<String>>,
}

impl spring::core::Dispatch for Worker {
    fn type_info(&self) -> &'static TypeInfo {
        &WORKER_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        _args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        if op != OP_WORK {
            return Err(SpringError::UnknownOp(op));
        }
        self.log.lock().push(format!(
            "work() at priority {} in txn {}",
            current_call_priority(),
            current_txn()
        ));
        encode_ok(reply);
        Ok(())
    }
}

fn work(obj: &spring::core::SpringObj) {
    let call = obj.start_call(OP_WORK).unwrap();
    let mut reply = obj.invoke(call).unwrap();
    spring::core::decode_reply_status(&mut reply).unwrap();
}

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    ctx.register_subcontract(Priority::new());
    ctx.register_subcontract(Txn::new());
    ctx.register_subcontract(Stream::new());
    ctx.types().register(&WORKER_TYPE);
    ctx
}

fn main() {
    let kernel = Kernel::new("machine");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    // --- Priority transfer (§8.4) ---
    let worker = Arc::new(Worker {
        log: Mutex::new(Vec::new()),
    });
    let pobj = Priority.export(&server, worker.clone()).unwrap();
    let pobj =
        spring::core::ship_object(&spring::core::KernelTransport, pobj, &client, &WORKER_TYPE)
            .unwrap();
    Priority::set_priority(&pobj, 3).unwrap();
    work(&pobj);
    Priority::set_priority(&pobj, 9).unwrap();
    work(&pobj);

    // --- Transaction control information (§8.4) ---
    let (tobj, journal) = Txn::export_with_journal(&server, worker.clone()).unwrap();
    let tobj =
        spring::core::ship_object(&spring::core::KernelTransport, tobj, &client, &WORKER_TYPE)
            .unwrap();
    {
        let _scope = TxnScope::begin(4242);
        work(&tobj);
        work(&tobj);
    }
    work(&tobj); // Outside the transaction.

    println!("servant observations:");
    for line in worker.log.lock().iter() {
        println!("  {line}");
    }
    println!("txn journal: {:?}", journal.entries());

    // --- Live video over a lossy network (§8.4) ---
    let net = Network::new(NetConfig {
        drop_prob: 0.25,
        ..Default::default()
    });
    net.reseed(42);
    let cam_node = net.add_node("camera");
    let tv_node = net.add_node("display");
    let display = ctx_on(tv_node.kernel(), "display");
    let camera = ctx_on(cam_node.kernel(), "camera");

    let (vobj, stats) = Stream::export(
        &display,
        worker,
        Arc::new(|_seq: u64, _frame: &[u8]| { /* render */ }),
    )
    .unwrap();
    let vobj = spring::core::ship_object(&*net, vobj, &camera, &WORKER_TYPE).unwrap();

    let mut dropped = 0;
    for i in 0..120u64 {
        if Stream::send_frame(&vobj, &vec![0u8; 512 + i as usize]).unwrap() == FrameOutcome::Dropped
        {
            dropped += 1;
        }
    }
    println!(
        "\nvideo: sent 120 frames over a 25%-loss link; {} dropped in flight, \
         display rendered {} (gaps tolerated: {})",
        dropped,
        stats.received(),
        stats.missing()
    );
}
