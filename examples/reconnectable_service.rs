//! Reconnectable subcontract (§8.3): a client's object quietly survives a
//! server crash and restart by re-resolving its name.
//!
//! Run with: `cargo run --example reconnectable_service`

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use spring::core::{ship_object, DomainCtx, KernelTransport};
use spring::kernel::Kernel;
use spring::naming::{NameClient, NameServer, NAMING_CONTEXT_TYPE};
use spring::services::fs;
use spring::subcontracts::{register_standard, Reconnectable, RetryPolicy};

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    // Snappy retries for the demo.
    ctx.register_subcontract(Reconnectable::with_policy(RetryPolicy {
        max_attempts: 20,
        interval: Duration::from_millis(5),
        ..RetryPolicy::default()
    }));
    spring::services::register_fs_types(&ctx);
    ctx
}

/// A file servant whose contents stand in for stable storage: every server
/// generation re-reads the same bytes.
struct JournalServant {
    content: Mutex<Vec<u8>>,
}

impl fs::FileServant for JournalServant {
    fn size(&self) -> Result<i64, fs::FileError> {
        Ok(self.content.lock().len() as i64)
    }

    fn read(&self, offset: i64, count: i64) -> Result<Vec<u8>, fs::FileError> {
        let c = self.content.lock();
        let start = (offset.max(0) as usize).min(c.len());
        let end = (start + count.max(0) as usize).min(c.len());
        Ok(c[start..end].to_vec())
    }

    fn write(&self, offset: i64, data: Vec<u8>) -> Result<(), fs::FileError> {
        let mut c = self.content.lock();
        let end = offset as usize + data.len();
        if c.len() < end {
            c.resize(end, 0);
        }
        c[offset as usize..end].copy_from_slice(&data);
        Ok(())
    }

    fn truncate(&self, new_size: i64) -> Result<(), fs::FileError> {
        self.content.lock().truncate(new_size.max(0) as usize);
        Ok(())
    }

    fn stat(&self) -> Result<fs::FileStat, fs::FileError> {
        Ok(fs::FileStat {
            size: self.content.lock().len() as i64,
            version: 1,
            writable: true,
        })
    }

    fn version(&self) -> Result<i64, fs::FileError> {
        Ok(1)
    }
}

/// One "generation" of the stable-storage server: exports its file under a
/// well-known name via the reconnectable subcontract and (re-)binds it.
fn start_server(
    kernel: &Kernel,
    ns: &Arc<NameServer>,
    generation: u32,
    stable_content: &[u8],
) -> Arc<DomainCtx> {
    let ctx = ctx_on(kernel, &format!("server-gen{generation}"));
    let servant = Arc::new(JournalServant {
        content: Mutex::new(stable_content.to_vec()),
    });
    let obj = Reconnectable::export(&ctx, fs::FileSkeleton::new(servant), "svc/journal").unwrap();

    let names = NameClient::from_obj(
        ship_object(
            &KernelTransport,
            ns.root_object().unwrap(),
            &ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    let _ = names.create_context("svc");
    let _ = names.unbind("svc/journal");
    names.bind_consume("svc/journal", obj).unwrap();
    ctx
}

fn main() {
    let kernel = Kernel::new("machine");
    let ns_ctx = ctx_on(&kernel, "name-server");
    let ns = NameServer::new(&ns_ctx);

    // Generation 1 of the server.
    let gen1 = start_server(&kernel, &ns, 1, b"stable journal contents");

    // A client picks the object up by name; its domain resolver points at
    // the same name service, which is what reconnect uses later.
    let client_ctx = ctx_on(&kernel, "client");
    let client_names = NameClient::from_obj(
        ship_object(
            &KernelTransport,
            ns.root_object().unwrap(),
            &client_ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    let f =
        fs::File::from_obj(client_names.resolve("svc/journal", &fs::FILE_TYPE).unwrap()).unwrap();
    client_ctx.set_resolver(Arc::new(client_names));
    println!(
        "read: {:?}",
        String::from_utf8(f.read(0, 64).unwrap()).unwrap()
    );

    // The server crashes...
    println!("\n*** server crashes ***");
    gen1.domain().crash();

    // ...and a new generation restarts from stable storage, re-binding the
    // same name while the client's call retries in the background.
    let kernel2 = kernel.clone();
    let ns2 = ns.clone();
    let restarter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        println!("*** server restarts ***");
        start_server(&kernel2, &ns2, 2, b"stable journal contents")
    });

    // This call spans the outage: it fails, re-resolves periodically, and
    // succeeds once the restart lands — the client code never noticed.
    println!(
        "read across the crash: {:?}",
        String::from_utf8(f.read(0, 64).unwrap()).unwrap()
    );
    restarter.join().unwrap();
}
