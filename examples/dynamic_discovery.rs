//! Dynamic subcontract discovery (§6.2): an "old" program that was never
//! linked with replicated-object support receives a replicon object, and
//! the base system dynamically loads the right subcontract library — while
//! refusing libraries outside the trusted search path.
//!
//! Run with: `cargo run --example dynamic_discovery`

use std::sync::Arc;

use spring::core::{ship_object, DomainCtx, LibraryStore, MapLibraryNames, SpringError, TypeInfo};
use spring::kernel::Kernel;
use spring::subcontracts::{
    register_standard, standard_library, ReplicaGroup, Replicon, RepliconServer, Singleton,
};

static COUNTER_TYPE: TypeInfo = TypeInfo {
    name: "counter",
    parents: &[&spring::core::OBJECT_TYPE],
    default_subcontract: Singleton::ID,
};

struct Counter;

impl spring::core::Dispatch for Counter {
    fn type_info(&self) -> &'static TypeInfo {
        &COUNTER_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &spring::core::ServerCtx,
        op: u32,
        _args: &mut spring::buf::CommBuffer,
        reply: &mut spring::buf::CommBuffer,
    ) -> spring::core::Result<()> {
        if op == spring::core::op_hash("get") {
            spring::core::encode_ok(reply);
            reply.put_i64(42);
            Ok(())
        } else {
            Err(SpringError::UnknownOp(op))
        }
    }
}

fn main() {
    let kernel = Kernel::new("machine");

    // A modern server exporting a *replicated* counter.
    let server_ctx = DomainCtx::new(kernel.create_domain("server"));
    register_standard(&server_ctx);
    let group = ReplicaGroup::new();
    group
        .add(RepliconServer::new(&server_ctx, Arc::new(Counter)).unwrap())
        .unwrap();
    let obj = group.object_for(&server_ctx).unwrap();

    // An old program: only linked with singleton, knows nothing of replicon.
    let old_ctx = DomainCtx::new(kernel.create_domain("old-program"));
    old_ctx.register_subcontract(Singleton::new());
    old_ctx.types().register(&COUNTER_TYPE);

    // First attempt: no discovery configured — the unmarshal fails.
    let copy = obj.copy().unwrap();
    match ship_object(
        &spring::core::KernelTransport,
        copy,
        &old_ctx,
        &COUNTER_TYPE,
    ) {
        Err(SpringError::UnknownSubcontract(id)) => {
            println!("without discovery: unknown subcontract {id} (as expected)");
        }
        other => panic!("unexpected: {other:?}"),
    }

    // The administrator installs the standard subcontract library in a
    // trusted directory, and the naming context maps the identifier to it.
    let store = LibraryStore::new();
    store.install("standard.so", "/usr/lib/subcontracts", standard_library());
    store.install("evil.so", "/tmp/downloads", standard_library());
    let names = MapLibraryNames::new();
    names.bind(Replicon::ID, "standard.so");
    old_ctx.configure_loader(store.clone(), vec!["/usr/lib/subcontracts".into()]);
    old_ctx.set_library_names(names.clone());

    // Second attempt: the registry misses, the naming context supplies the
    // library name, the dynamic linker loads it, unmarshalling continues.
    let arrived =
        ship_object(&spring::core::KernelTransport, obj, &old_ctx, &COUNTER_TYPE).unwrap();
    println!(
        "with discovery: received a {} object via subcontract {:?}",
        arrived.type_name(),
        arrived.subcontract().name()
    );
    let call = arrived.start_call(spring::core::op_hash("get")).unwrap();
    let mut reply = arrived.invoke(call).unwrap();
    spring::core::decode_reply_status(&mut reply).unwrap();
    println!("invoking it works: get() = {}", reply.get_i64().unwrap());

    // Security: a subcontract nominated from an untrusted location is
    // refused (§6.2's designated search path).
    let names2 = MapLibraryNames::new();
    names2.bind(Replicon::ID, "evil.so");
    let victim_ctx = DomainCtx::new(kernel.create_domain("victim"));
    victim_ctx.register_subcontract(Singleton::new());
    victim_ctx.types().register(&COUNTER_TYPE);
    victim_ctx.configure_loader(store, vec!["/usr/lib/subcontracts".into()]);
    victim_ctx.set_library_names(names2);

    let another = group.object_for(&server_ctx).unwrap();
    match ship_object(
        &spring::core::KernelTransport,
        another,
        &victim_ctx,
        &COUNTER_TYPE,
    ) {
        Err(SpringError::UntrustedLibrary { library, location }) => {
            println!("refused to load {library} from untrusted {location}");
        }
        other => panic!("unexpected: {other:?}"),
    }
}
