//! A tiny shell over the Spring file service — the kind of client program
//! the whole stack exists for. Commands arrive as arguments (separated by
//! `;`) or, with no arguments, a demo script runs.
//!
//! ```text
//! cargo run --example fs_shell -- 'create /notes ; write /notes hello ; cat /notes ; ls'
//! ```
//!
//! Commands: `ls`, `create NAME`, `rm NAME`, `write NAME TEXT`, `cat NAME`,
//! `stat NAME`, `import NAME FROM` (copy-mode object parameter).

use std::sync::Arc;

use spring::core::{ship_object, DomainCtx, KernelTransport};
use spring::kernel::Kernel;
use spring::naming::{NameClient, NameServer, NAMING_CONTEXT_TYPE};
use spring::services::{fs, FileServer};
use spring::subcontracts::register_standard;

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    spring::services::register_fs_types(&ctx);
    ctx
}

fn run_command(fsys: &fs::FileSystem, line: &str) {
    let mut words = line.split_whitespace();
    let Some(cmd) = words.next() else { return };
    let result: Result<String, String> = (|| {
        let mut arg = || {
            words
                .next()
                .ok_or_else(|| format!("{cmd}: missing argument"))
        };
        match cmd {
            "ls" => {
                let names = fsys.list().map_err(|e| e.to_string())?;
                Ok(names.join("  "))
            }
            "create" => {
                fsys.create(arg()?).map_err(|e| e.to_string())?;
                Ok("ok".into())
            }
            "rm" => {
                fsys.remove(arg()?).map_err(|e| e.to_string())?;
                Ok("ok".into())
            }
            "write" => {
                let name = arg()?;
                let f = fsys.open(name).map_err(|e| e.to_string())?;
                let text: Vec<&str> = words.collect();
                let data = text.join(" ").into_bytes();
                f.truncate(0).map_err(|e| e.to_string())?;
                f.write(0, &data).map_err(|e| e.to_string())?;
                Ok(format!("wrote {} bytes", data.len()))
            }
            "cat" => {
                let f = fsys.open(arg()?).map_err(|e| e.to_string())?;
                let size = f.size().map_err(|e| e.to_string())?;
                let data = f.read(0, size).map_err(|e| e.to_string())?;
                Ok(String::from_utf8_lossy(&data).into_owned())
            }
            "stat" => {
                let f = fsys.open(arg()?).map_err(|e| e.to_string())?;
                let st = f.stat().map_err(|e| e.to_string())?;
                Ok(format!(
                    "size={} version={} writable={}",
                    st.size, st.version, st.writable
                ))
            }
            "import" => {
                let name = arg()?;
                let from = arg()?;
                // Copy-mode object parameter: we keep our file object.
                let src = fsys.open(from).map_err(|e| e.to_string())?;
                fsys.import_file(name, &src).map_err(|e| e.to_string())?;
                Ok("imported".into())
            }
            other => Err(format!("unknown command {other:?}")),
        }
    })();
    match result {
        Ok(out) => println!("spring-fs> {line}\n{out}"),
        Err(err) => println!("spring-fs> {line}\nerror: {err}"),
    }
}

fn main() {
    // One machine: a name server, the file server, and this shell.
    let kernel = Kernel::new("machine");
    let ns_ctx = ctx_on(&kernel, "name-server");
    let fs_ctx = ctx_on(&kernel, "file-server");
    let shell_ctx = ctx_on(&kernel, "shell");

    let ns = NameServer::new(&ns_ctx);
    let fileserver = FileServer::new(&fs_ctx, "cache_manager");
    fileserver.put("/etc/motd", b"welcome to spring-fs");
    let fs_names = NameClient::from_obj(
        ship_object(
            &KernelTransport,
            ns.root_object().unwrap(),
            &fs_ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    fs_names
        .bind_consume("fs", fileserver.export_fs().unwrap().into_obj())
        .unwrap();

    let shell_names = NameClient::from_obj(
        ship_object(
            &KernelTransport,
            ns.root_object().unwrap(),
            &shell_ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    let fsys = fs::FileSystem::from_obj(shell_names.resolve("fs", &fs::FILE_SYSTEM_TYPE).unwrap())
        .unwrap();

    let script = std::env::args().skip(1).collect::<Vec<_>>().join(" ");
    let script = if script.trim().is_empty() {
        "ls ; cat /etc/motd ; create /notes ; write /notes remember the doors ; \
         cat /notes ; stat /notes ; import /notes.bak /notes ; cat /notes.bak ; ls"
            .to_owned()
    } else {
        script
    };

    for line in script.split(';') {
        let line = line.trim();
        if !line.is_empty() {
            run_command(&fsys, line);
        }
    }
}
