//! Caching subcontract across two machines (§8.2): the server exports
//! `cacheable_file` objects; the client machine's cache manager serves
//! repeated reads locally, dodging the network latency.
//!
//! Run with: `cargo run --example caching_files`

use std::sync::Arc;
use std::time::{Duration, Instant};

use spring::core::{ship_object, DomainCtx};
use spring::kernel::Kernel;
use spring::naming::{NameClient, NameServer, NAMING_CONTEXT_TYPE};
use spring::net::{NetConfig, Network};
use spring::services::{file_cache_manager, fs, FileServer};
use spring::subcontracts::register_standard;

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    spring::services::register_fs_types(&ctx);
    ctx
}

fn main() {
    // Two machines, 500 µs apart.
    let net = Network::new(NetConfig::with_latency(Duration::from_micros(500)));
    let server_node = net.add_node("server-machine");
    let client_node = net.add_node("client-machine");

    let server_ctx = ctx_on(server_node.kernel(), "file-server");
    let client_ctx = ctx_on(client_node.kernel(), "client");
    let mgr_ctx = ctx_on(client_node.kernel(), "cache-manager");
    let ns_ctx = ctx_on(client_node.kernel(), "name-server");

    // The client machine's local naming carries its cache manager.
    let ns = NameServer::new(&ns_ctx);
    let manager = file_cache_manager(&mgr_ctx);
    let mgr_names = NameClient::from_obj(
        ship_object(
            &*net,
            ns.root_object().unwrap(),
            &mgr_ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    mgr_names
        .bind("cache_manager", &manager.export().unwrap())
        .unwrap();
    let client_names = NameClient::from_obj(
        ship_object(
            &*net,
            ns.root_object().unwrap(),
            &client_ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    client_ctx.set_resolver(Arc::new(client_names));

    // The server exports a cacheable file; shipping it to the client
    // machine attaches it to the local cache manager (§8.2's unmarshal).
    let fileserver = FileServer::new(&server_ctx, "cache_manager");
    fileserver.put("big", &vec![7u8; 32 * 1024]);
    let obj = fileserver.export_cacheable("big").unwrap();
    let f = fs::CacheableFile::from_obj(
        ship_object(&*net, obj, &client_ctx, &fs::CACHEABLE_FILE_TYPE).unwrap(),
    )
    .unwrap();

    // Read the same range many times: first read crosses the network, the
    // rest are local cache hits.
    let before = net.stats();
    let start = Instant::now();
    for _ in 0..50 {
        let _ = f.read(0, 4096).unwrap();
    }
    let elapsed = start.elapsed();
    let delta = net.stats().since(&before);

    println!("50 reads took {elapsed:?}");
    println!(
        "network messages: {} (cache hits stayed on-machine)",
        delta.messages
    );
    println!(
        "cache stats: hits={} misses={}",
        manager.stats().hits(),
        manager.stats().misses()
    );

    // A write invalidates the cache (write-through), so the next read
    // crosses the network again.
    f.write(0, b"fresh").unwrap();
    let _ = f.read(0, 5).unwrap();
    println!(
        "after write: invalidations={} misses={}",
        manager.stats().invalidations(),
        manager.stats().misses()
    );
}
