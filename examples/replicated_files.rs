//! Replicon across three machines (§5): a replicated file survives machine
//! crashes; clients quietly fail over and pick up piggybacked replica-set
//! updates.
//!
//! Run with: `cargo run --example replicated_files`

use std::sync::Arc;

use spring::core::DomainCtx;
use spring::kernel::Kernel;
use spring::net::{NetConfig, Network};
use spring::services::ReplicatedFileGroup;
use spring::subcontracts::{register_standard, Replicon};

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    spring::services::register_fs_types(&ctx);
    ctx
}

fn main() {
    let net = Network::new(NetConfig::default());
    let nodes: Vec<_> = (0..3)
        .map(|i| net.add_node(format!("replica-machine-{i}")))
        .collect();
    let client_node = net.add_node("client-machine");

    let replica_ctxs: Vec<Arc<DomainCtx>> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| ctx_on(n.kernel(), &format!("replica-{i}")))
        .collect();
    let client_ctx = ctx_on(client_node.kernel(), "client");

    // Three replicas on three machines, peer-synchronized writes.
    let group = ReplicatedFileGroup::build_with_transport(
        &replica_ctxs,
        b"v1: replicated state",
        net.clone(),
    )
    .unwrap();
    let f = group.object_for(&client_ctx).unwrap();

    println!("replicas: {}", f.replica_count().unwrap());
    println!(
        "read: {:?}",
        String::from_utf8(f.read(0, 64).unwrap()).unwrap()
    );

    f.write(0, b"v2").unwrap();
    for i in 0..3 {
        println!(
            "replica {i} content: {:?}",
            String::from_utf8(group.replica_content(i)).unwrap()
        );
    }

    // Crash the machine the client would talk to first.
    println!("\n*** crashing replica 0 ***");
    group.crash_replica(0).unwrap();

    // The very next call silently fails over; the reply piggybacks the new
    // replica set, so the client's door set shrinks to the survivors.
    println!(
        "read after crash: {:?}",
        String::from_utf8(f.read(0, 64).unwrap()).unwrap()
    );
    println!(
        "client now holds {} replica doors (epoch {})",
        Replicon::live_replicas(f.obj()).unwrap(),
        Replicon::epoch(f.obj()).unwrap()
    );

    f.write(0, b"v3").unwrap();
    println!(
        "replica 1 content: {:?}",
        String::from_utf8(group.replica_content(1)).unwrap()
    );
    println!(
        "replica 2 content: {:?}",
        String::from_utf8(group.replica_content(2)).unwrap()
    );
    println!("network calls forwarded: {}", net.stats().calls_forwarded);
}
