//! The IDL compiler as a library: compile an interface definition at run
//! time and inspect what the generator produces. (Build-time usage lives in
//! `crates/services/build.rs`; the CLI is `cargo run -p spring-idl --bin
//! idlc -- file.idl`.)
//!
//! Run with: `cargo run --example idl_workflow`

const SOURCE: &str = r#"
// A calendar service, straight out of §3.1: interfaces only, no
// implementation information.
module calendar {
    exception clash { string with; };

    struct slot {
        long long start;
        long long minutes;
        string title;
    };

    enum visibility { public_event, private_event };

    interface diary {
        readonly attribute long long count;
        void book(in slot entry, in visibility vis) raises (clash);
        sequence<slot> day(in long long date);
    };

    // A replicated diary is still a diary (§6.3): richer semantics, same
    // application-visible interface.
    [subcontract = replicon]
    interface replicated_diary : diary {
        long replica_count();
    };
};
"#;

fn main() {
    // The full pipeline, stage by stage.
    let tokens = spring_idl::lex(SOURCE).expect("lexes");
    println!("lexer:    {} tokens", tokens.len());

    let spec = spring_idl::parse(&tokens).expect("parses");
    println!("parser:   {} top-level definitions", spec.definitions.len());

    let checked = spring_idl::check(&spec).expect("checks");
    println!(
        "checker:  {} interfaces, {} structs, {} enums, {} exceptions",
        checked.interfaces.len(),
        checked.structs.len(),
        checked.enums.len(),
        checked.exceptions.len()
    );
    for (name, info) in &checked.interfaces {
        println!(
            "          {name}: {} ops (incl. inherited), default subcontract {:?}",
            info.flat_ops.len(),
            info.decl.subcontract
        );
    }

    let code = spring_idl::generate(&checked);
    println!("codegen:  {} lines of Rust", code.lines().count());

    // A taste of the output: the replicated diary's client stub keeps the
    // inherited `book` operation and the generated accessor for `count`.
    for needle in [
        "pub struct ReplicatedDiary",
        "pub fn book(",
        "pub fn get_count(",
        "pub trait ReplicatedDiaryServant",
    ] {
        let found = code.contains(needle);
        println!("          contains {needle:?}: {found}");
        assert!(found);
    }

    // And the whole thing in one call:
    let same = spring_idl::compile(SOURCE).expect("compiles");
    assert_eq!(same, code);
    println!("compile() reproduces the staged pipeline byte for byte.");
}
